"""Incremental ASAP/ALAP time-frame maintenance.

A *time frame* is the ``[ASAP, ALAP]`` start window of an operation
under a latency bound and a set of already-fixed operations — the core
quantity of force-directed scheduling and of any schedule validator.
The textbook way to honour a new fixing decision is a full O(V+E)
recompute of every window; :class:`FrameEngine` instead delta-propagates
the effect of one :meth:`fix` along the affected cone only, which makes
the repeated-rescheduling loops (FDS fixing sweeps, soft-schedule
hardening checks) cheap.

The engine works in the integer index space of the graph's compiled
:class:`~repro.ir.graph_view.GraphView` and maintains two invariants
after every successful ``fix``:

* ``lo[v] >= lo[p] + delay(p) + weight(p, v)`` for every edge ``p -> v``
  (and symmetrically for ``hi``), and
* ``lo[v] <= hi[v]`` for every operation.

Because windows only ever *tighten* and the propagation operator is the
same max/min used by the full recompute, the maintained frames are
exactly what a from-scratch recompute with the accumulated fixings
would produce — property-tested against the reference implementation in
``tests/scheduling/test_frames.py``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import GraphError, SchedulingError, UnknownNodeError
from repro.ir.dfg import DataFlowGraph

__all__ = ["FrameEngine"]

#: One reported frame change: ``(node_id, old_lo, old_hi, new_lo,
#: new_hi)``.
FrameChange = Tuple[str, int, int, int, int]


class FrameEngine:
    """Delta-propagating ASAP/ALAP windows over one graph snapshot.

    Parameters
    ----------
    dfg:
        The graph to maintain frames for.  The engine snapshots the
        graph's :meth:`~repro.ir.dfg.DataFlowGraph.view`; mutating the
        graph afterwards invalidates the engine (build a fresh one).
    latency:
        Deadline (number of control steps).  Defaults to the critical
        path length; a smaller value raises :class:`GraphError`.
    windows:
        Optional external ``{node id: (lo, hi)}`` start-window pins
        (the boundary-constraint mechanism of hierarchical
        scheduling).  Each pin tightens the operation's natural frame
        and is propagated through the precedence cone before any
        :meth:`fix`; an unsatisfiable pin raises
        :class:`SchedulingError`.
    """

    def __init__(
        self,
        dfg: DataFlowGraph,
        latency: int = None,
        windows: Dict[str, Tuple[int, int]] = None,
    ):
        view = dfg.view()
        span = view.diameter()
        if latency is None:
            latency = span
        elif latency < span:
            raise GraphError(
                f"latency {latency} is below the critical path length {span}"
            )
        self.dfg = dfg
        self.view = view
        self.latency = latency
        delays = view.delays
        sdist = view.source_distance_array()
        tdist = view.sink_distance_array()
        n = view.num_nodes
        #: Live window bounds per view index (read-only for callers).
        self.lo: List[int] = [sdist[i] - delays[i] for i in range(n)]
        self.hi: List[int] = [latency - tdist[i] for i in range(n)]
        self._fixed: List[bool] = [False] * n
        if windows:
            self._apply_windows(windows)

    def _apply_windows(self, windows: Dict[str, Tuple[int, int]]) -> None:
        """Tighten the initial frames with external window pins.

        The clamp-then-repropagate order matches the full-recompute
        reference (``_frames`` with windows), so delta ``fix`` calls
        stay equivalent to a from-scratch recompute afterwards.
        """
        view = self.view
        lo, hi = self.lo, self.hi
        delays = view.delays
        for node_id, (wlo, whi) in windows.items():
            i = self._index(node_id)
            if wlo > lo[i]:
                lo[i] = wlo
            if whi < hi[i]:
                hi[i] = whi
        topo = view.topo_indices()
        succ_off, succ_dst, succ_w = view.succ_off, view.succ_dst, view.succ_w
        for u in topo:
            base = lo[u] + delays[u]
            for k in range(succ_off[u], succ_off[u + 1]):
                v = succ_dst[k]
                nlo = base + succ_w[k]
                if nlo > lo[v]:
                    lo[v] = nlo
        pred_off, pred_src, pred_w = view.pred_off, view.pred_src, view.pred_w
        for u in reversed(topo):
            cap = hi[u]
            for k in range(pred_off[u], pred_off[u + 1]):
                p = pred_src[k]
                nhi = cap - pred_w[k] - delays[p]
                if nhi < hi[p]:
                    hi[p] = nhi
        ids = view.ids
        for i in range(view.num_nodes):
            if lo[i] > hi[i]:
                raise SchedulingError(
                    f"infeasible frame for {ids[i]}: [{lo[i]}, {hi[i]}] "
                    f"under the given windows and latency {self.latency}"
                )

    # ------------------------------------------------------------------
    # Queries.

    def _index(self, node_id: str) -> int:
        try:
            return self.view.index[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def frame(self, node_id: str) -> Tuple[int, int]:
        """The current ``(ASAP, ALAP)`` start window of ``node_id``."""
        i = self._index(node_id)
        return self.lo[i], self.hi[i]

    def width(self, node_id: str) -> int:
        """Number of feasible start steps left for ``node_id``."""
        i = self._index(node_id)
        return self.hi[i] - self.lo[i] + 1

    def is_fixed(self, node_id: str) -> bool:
        return self._fixed[self._index(node_id)]

    def frames_dict(self) -> Dict[str, Tuple[int, int]]:
        """All windows as ``{node id: (lo, hi)}`` in topological order.

        Matches the shape (and iteration order) of the full-recompute
        reference, so the two are directly comparable in tests.
        """
        ids = self.view.ids
        lo, hi = self.lo, self.hi
        return {ids[i]: (lo[i], hi[i]) for i in self.view.topo_indices()}

    # ------------------------------------------------------------------
    # The one mutator.

    def fix(self, node_id: str, step: int) -> List[FrameChange]:
        """Pin ``node_id`` to start at ``step`` and propagate.

        ``step`` must lie inside the operation's current window.  The
        effect — successors' ASAPs rising, predecessors' ALAPs falling —
        is pushed along the affected cone only.  Returns every window
        that changed (the fixed operation first) for callers that want
        to react to the narrowing; the in-tree schedulers read the
        updated windows directly and ignore the return value.

        Raises :class:`SchedulingError` if ``step`` is outside the
        window or the propagation would make any frame (including an
        already-fixed operation's) infeasible; the engine state is
        only safe for continued use when ``fix`` returns normally.
        """
        i = self._index(node_id)
        lo, hi = self.lo, self.hi
        if step < lo[i]:
            raise SchedulingError(
                f"fixed time {step} for {node_id} violates precedence "
                f"(needs >= {lo[i]})"
            )
        if step > hi[i]:
            raise SchedulingError(
                f"fixed time {step} for {node_id} violates its deadline "
                f"(needs <= {hi[i]})"
            )
        view = self.view
        ids = view.ids
        delays = view.delays
        changed: Dict[int, Tuple[int, int]] = {}
        if lo[i] != step or hi[i] != step:
            changed[i] = (lo[i], hi[i])
            lo[i] = hi[i] = step
        self._fixed[i] = True

        fixed = self._fixed
        succ_off, succ_dst, succ_w = view.succ_off, view.succ_dst, view.succ_w
        pred_off, pred_src, pred_w = view.pred_off, view.pred_src, view.pred_w

        # Forward: raise descendants' ASAPs.
        stack = [i]
        while stack:
            u = stack.pop()
            base = lo[u] + delays[u]
            for k in range(succ_off[u], succ_off[u + 1]):
                v = succ_dst[k]
                nlo = base + succ_w[k]
                if nlo <= lo[v]:
                    continue
                if fixed[v]:
                    raise SchedulingError(
                        f"fixed time {lo[v]} for {ids[v]} violates "
                        f"precedence (needs >= {nlo})"
                    )
                if nlo > hi[v]:
                    raise SchedulingError(
                        f"infeasible frame for {ids[v]}: [{nlo}, {hi[v]}] "
                        f"within latency {self.latency}"
                    )
                if v not in changed:
                    changed[v] = (lo[v], hi[v])
                lo[v] = nlo
                stack.append(v)

        # Backward: lower ancestors' ALAPs.
        stack = [i]
        while stack:
            u = stack.pop()
            cap = hi[u]
            for k in range(pred_off[u], pred_off[u + 1]):
                p = pred_src[k]
                nhi = cap - pred_w[k] - delays[p]
                if nhi >= hi[p]:
                    continue
                if fixed[p]:
                    raise SchedulingError(
                        f"fixed time {hi[p]} for {ids[p]} violates the "
                        f"deadline of {ids[u]} (needs <= {nhi})"
                    )
                if nhi < lo[p]:
                    raise SchedulingError(
                        f"infeasible frame for {ids[p]}: [{lo[p]}, {nhi}] "
                        f"within latency {self.latency}"
                    )
                if p not in changed:
                    changed[p] = (lo[p], hi[p])
                hi[p] = nhi
                stack.append(p)

        return [
            (ids[j], old_lo, old_hi, lo[j], hi[j])
            for j, (old_lo, old_hi) in changed.items()
        ]

    def __repr__(self):
        done = sum(1 for f in self._fixed if f)
        return (
            f"FrameEngine(ops={self.view.num_nodes}, fixed={done}, "
            f"latency={self.latency})"
        )
