"""Exact resource-constrained scheduling by branch and bound.

The paper contrasts heuristics with "global optimization approaches,
which usually reduce the high level synthesis task to a linear integer
programming problem ... the problem size which these methods can tackle
is limited".  This module provides that exact comparator for small
graphs: a depth-first branch-and-bound over per-step start decisions,
used in tests to certify the heuristics' quality and in an ablation
bench.

The search enumerates, at each control step, every subset of startable
ready operations that fits the free units, recursing step by step.  Two
classic bounds prune the tree: the critical-path bound (longest remaining
sink distance) and the resource bound (remaining work per unit type over
unit count).
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import InfeasibleError
from repro.ir.analysis import sink_distances
from repro.ir.dfg import DataFlowGraph
from repro.scheduling.base import Schedule, validate_schedule
from repro.scheduling.list_scheduler import ListPriority, list_schedule
from repro.scheduling.resources import FuType, ResourceSet

# A search state: ops already started (with start times) plus per-unit
# busy-until times, advanced step by step.


def exact_schedule(
    dfg: DataFlowGraph,
    resources: ResourceSet,
    node_limit: int = 200_000,
) -> Schedule:
    """Minimum-latency resource-constrained schedule (exact).

    Intended for graphs up to roughly 20 operations; raises
    :class:`InfeasibleError` when an op has no compatible unit, and
    stops early (returning the best found so far, which is optimal if
    the search completed) after ``node_limit`` search nodes.
    """
    missing = resources.check_schedulable(dfg)
    if missing:
        raise InfeasibleError(
            f"no functional unit can execute: {', '.join(missing)}"
        )

    # Upper bound / incumbent from the list scheduler.
    incumbent = list_schedule(dfg, resources, ListPriority.SINK_DISTANCE)
    best_length = incumbent.length
    best_times = dict(incumbent.start_times)

    tdist = sink_distances(dfg)
    order = dfg.topological_order()
    fu_of: Dict[str, Optional[FuType]] = {
        n: (None if dfg.node(n).op.is_structural
            else resources.fu_for_op(dfg.node(n).op))
        for n in order
    }
    work_per_type: Dict[FuType, int] = {}
    for n in order:
        fu_type = fu_of[n]
        if fu_type is not None:
            work_per_type[fu_type] = (
                work_per_type.get(fu_type, 0) + max(1, dfg.delay(n))
            )

    explored = 0
    seen: Dict[Tuple[FrozenSet[str], Tuple[int, ...]], int] = {}

    def remaining_bound(unstarted: List[str], finish_of: Dict[str, int]) -> int:
        """Lower bound on the final makespan given current progress."""
        bound = max(finish_of.values(), default=0)
        rem_work: Dict[FuType, int] = {}
        for n in unstarted:
            # Critical-path component: op cannot finish before its ready
            # time plus its sink distance.
            ready = 0
            for e in dfg.in_edges(n):
                if e.src in finish_of:
                    ready = max(ready, finish_of[e.src] + e.weight)
            bound = max(bound, ready + tdist[n])
            fu_type = fu_of[n]
            if fu_type is not None:
                rem_work[fu_type] = rem_work.get(fu_type, 0) + max(
                    1, dfg.delay(n)
                )
        for fu_type, work in rem_work.items():
            count = resources.count(fu_type)
            bound = max(bound, -(-work // count))
        return bound

    start_times: Dict[str, int] = {}
    finish_of: Dict[str, int] = {}

    def search(step: int, busy: Dict[Tuple[FuType, int], int]) -> None:
        nonlocal best_length, best_times, explored
        explored += 1
        if explored > node_limit:
            return

        unstarted = [n for n in order if n not in start_times]
        if not unstarted:
            length = max(finish_of.values(), default=0)
            if length < best_length:
                best_length = length
                best_times = dict(start_times)
            return

        if remaining_bound(unstarted, finish_of) >= best_length:
            return

        key = (
            frozenset(start_times.items()),
            tuple(sorted(max(0, b - step) for b in busy.values())),
        )
        prev = seen.get(key)
        if prev is not None and prev <= step:
            return
        seen[key] = step

        # Structural ops start the moment they are ready (no choice).
        placed_structural: List[str] = []
        for n in unstarted:
            if fu_of[n] is not None or dfg.node(n).op.is_structural is False:
                if fu_of[n] is not None:
                    continue
            if any(e.src not in finish_of for e in dfg.in_edges(n)):
                continue
            ready = max(
                (finish_of[e.src] + e.weight for e in dfg.in_edges(n)),
                default=0,
            )
            if ready <= step:
                start_times[n] = step
                finish_of[n] = step + dfg.delay(n)
                placed_structural.append(n)
        if placed_structural:
            search(step, busy)
            for n in placed_structural:
                del start_times[n]
                del finish_of[n]
            return

        startable: Dict[FuType, List[str]] = {}
        for n in unstarted:
            fu_type = fu_of[n]
            if fu_type is None:
                continue
            if any(e.src not in finish_of for e in dfg.in_edges(n)):
                continue
            ready = max(
                (finish_of[e.src] + e.weight for e in dfg.in_edges(n)),
                default=0,
            )
            if ready <= step:
                startable.setdefault(fu_type, []).append(n)

        free: Dict[FuType, List[Tuple[FuType, int]]] = {}
        for unit, until in busy.items():
            if until <= step:
                free.setdefault(unit[0], []).append(unit)

        # Enumerate per-type subsets (largest first so good solutions
        # surface early), then take the cartesian product across types.
        per_type_choices: List[List[Tuple[str, ...]]] = []
        fu_types = [ft for ft in startable if free.get(ft)]
        for fu_type in fu_types:
            candidates = startable[fu_type]
            capacity = min(len(free[fu_type]), len(candidates))
            choices: List[Tuple[str, ...]] = []
            for size in range(capacity, -1, -1):
                choices.extend(combinations(candidates, size))
            per_type_choices.append(choices)

        def issue(type_index: int, chosen: List[Tuple[str, ...]]) -> None:
            if type_index == len(per_type_choices):
                flat = [n for group in chosen for n in group]
                if not flat and not _anything_running(busy, step):
                    # Idling with nothing in flight can never help.
                    return
                new_busy = dict(busy)
                for group, fu_type in zip(chosen, fu_types):
                    units = iter(free[fu_type])
                    for n in group:
                        unit = next(units)
                        new_busy[unit] = step + max(1, dfg.delay(n))
                for n in flat:
                    start_times[n] = step
                    finish_of[n] = step + dfg.delay(n)
                search(step + 1, new_busy)
                for n in flat:
                    del start_times[n]
                    del finish_of[n]
                return
            for group in per_type_choices[type_index]:
                chosen.append(group)
                issue(type_index + 1, chosen)
                chosen.pop()

        if per_type_choices:
            issue(0, [])
        else:
            if not _anything_running(busy, step) and startable:
                return  # deadlock: ready work but no unit ever free
            search(step + 1, dict(busy))

    initial_busy = {unit: 0 for unit in resources.instances()}
    search(0, initial_busy)

    schedule = Schedule(
        dfg=dfg,
        start_times=best_times,
        resources=resources,
        algorithm="exact-bnb",
    )
    # Same exit discipline as the anytime solver: every schedule this
    # module hands out is re-checked against precedence and unit
    # capacity, so a search bug surfaces as a loud SchedulingError
    # instead of an optimistic "optimum".
    validate_schedule(schedule, resources, check_binding=False)
    return schedule


def _anything_running(busy: Dict[Tuple[FuType, int], int], step: int) -> bool:
    return any(until > step for until in busy.values())
