"""Unconstrained ASAP and ALAP schedules.

These are the textbook starting points for the paper's motivation: the
hard ALAP schedule in Figure 1(b) is produced exactly this way.  Neither
algorithm respects resource constraints — their usage profile is a lower
bound used by the list and force-directed schedulers.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.analysis import alap_times, asap_times
from repro.ir.dfg import DataFlowGraph
from repro.scheduling.base import Schedule


def asap_schedule(dfg: DataFlowGraph) -> Schedule:
    """Schedule every op at its earliest feasible start step."""
    return Schedule(
        dfg=dfg,
        start_times=asap_times(dfg),
        algorithm="asap",
    )


def alap_schedule(dfg: DataFlowGraph, latency: Optional[int] = None) -> Schedule:
    """Schedule every op at its latest start within ``latency``.

    ``latency`` defaults to the critical-path length, giving the tightest
    ALAP schedule (paper Figure 1(b)).
    """
    return Schedule(
        dfg=dfg,
        start_times=alap_times(dfg, latency=latency),
        algorithm="alap",
    )
