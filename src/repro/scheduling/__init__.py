"""Hard (traditional) scheduling: baselines and shared infrastructure.

This package hosts everything a *hard* scheduler needs — the resource
model with the paper's ``"2+/-,2*"`` constraint notation, the
:class:`~repro.scheduling.base.Schedule` container with validity
checking, and the baseline algorithms the paper compares against or
cites: resource-constrained list scheduling, ASAP/ALAP, force-directed
scheduling, an exact branch-and-bound scheduler for small graphs, and
an anytime branch-and-bound improver with Russian-doll lower bounds.
"""

from repro.scheduling.resources import FuType, ResourceSet, FU_TYPES
from repro.scheduling.base import (
    Schedule,
    artifact_start_times,
    schedule_artifact,
    validate_schedule,
)
from repro.scheduling.asap_alap import asap_schedule, alap_schedule
from repro.scheduling.frames import FrameEngine
from repro.scheduling.list_scheduler import (
    ListPriority,
    list_schedule,
)
from repro.scheduling.force_directed import (
    force_directed_schedule,
    force_directed_schedule_reference,
)
from repro.scheduling.exact import exact_schedule
from repro.scheduling.bnb import AnytimeBnB, bnb_anytime_schedule
from repro.scheduling.simulator import evaluate_dfg, simulate_schedule

__all__ = [
    "FuType",
    "ResourceSet",
    "FU_TYPES",
    "Schedule",
    "artifact_start_times",
    "schedule_artifact",
    "validate_schedule",
    "asap_schedule",
    "alap_schedule",
    "FrameEngine",
    "ListPriority",
    "list_schedule",
    "force_directed_schedule",
    "force_directed_schedule_reference",
    "exact_schedule",
    "AnytimeBnB",
    "bnb_anytime_schedule",
    "evaluate_dfg",
    "simulate_schedule",
]
