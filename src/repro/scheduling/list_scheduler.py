"""Resource-constrained list scheduling — the paper's baseline.

The scheduler walks control steps in order.  At each step it collects the
*ready* operations (all predecessors finished, edge weights honoured),
orders them by a priority function, and starts as many as free units
allow; multi-cycle operations hold their unit for their full delay
(non-pipelined units, the standard assumption for the benchmarks).

The priority function is pluggable because the paper does not state which
variant its baseline used, and the choice changes a few Figure 3 cells:

* :attr:`ListPriority.SINK_DISTANCE` — classic critical-path list
  scheduling (higher ``||v->||`` first).
* :attr:`ListPriority.READY_ORDER` — first-come-first-served on the ready
  queue (arrival step, then graph order).  This variant reproduces the
  paper's reported lengths exactly (see EXPERIMENTS.md).
* :attr:`ListPriority.MOBILITY` — least mobility (ALAP - ASAP) first.

Structural operations (wire delays, constants) never occupy a unit; they
are placed at their earliest feasible step.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional, Tuple

from repro.errors import InfeasibleError
from repro.ir.analysis import sink_distances
from repro.ir.dfg import DataFlowGraph
from repro.scheduling.base import Schedule
from repro.scheduling.frames import FrameEngine
from repro.scheduling.resources import FuType, ResourceSet, bank_assignment


class ListPriority(enum.Enum):
    """Ready-list ordering policies for :func:`list_schedule`."""

    SINK_DISTANCE = "sink_distance"
    READY_ORDER = "ready_order"
    MOBILITY = "mobility"


def list_schedule(
    dfg: DataFlowGraph,
    resources: ResourceSet,
    priority: ListPriority = ListPriority.SINK_DISTANCE,
    windows: Optional[Dict[str, Tuple[int, int]]] = None,
) -> Schedule:
    """Resource-constrained list scheduling.

    ``windows`` optionally pins per-op ``(lo, hi)`` start bounds; under
    resource constraints only the lower bound is enforceable, so the
    scheduler treats ``lo`` as a release time and ``hi`` as advisory
    (the hierarchical orchestrator re-derives real upper bounds from
    the stitched result).  Returns a :class:`Schedule` with a concrete
    unit binding.  Raises :class:`InfeasibleError` if some operation
    cannot execute on any available unit type.
    """
    missing = resources.check_schedulable(dfg)
    if missing:
        raise InfeasibleError(
            f"no functional unit can execute: {', '.join(missing)}"
        )

    # Banked memory: each memory op may only use the ports of its own
    # bank (ports are numbered bank-major, so bank b owns indices
    # [b*P, (b+1)*P)).  Flat resource sets have no banked type and the
    # map stays empty — allocation is untouched.
    banked = resources.banked_fu()
    bank_of_op = (
        bank_assignment(dfg, banked.banking[0]) if banked is not None
        else {}
    )

    order_index = {node_id: i for i, node_id in enumerate(dfg.nodes())}
    keys = _priority_keys(dfg, priority, order_index)

    remaining_preds = {n: dfg.in_degree(n) for n in dfg.nodes()}
    # earliest[n]: earliest start once all preds are done (edge weights
    # in); window lower bounds act as release times.
    releases = windows or {}
    earliest: Dict[str, int] = {
        n: max(0, releases[n][0]) if n in releases else 0
        for n in dfg.nodes()
    }
    # ready pool: ops whose preds have all been *scheduled* (their finish
    # times known); each becomes startable at earliest[n].  An
    # insertion-ordered dict-as-set keeps the O(n) list.remove() out of
    # the inner loop while preserving the deterministic pool order.
    ready: Dict[str, None] = dict.fromkeys(
        n for n in dfg.nodes() if remaining_preds[n] == 0
    )
    arrival: Dict[str, int] = {n: earliest[n] for n in ready}

    start_times: Dict[str, int] = {}
    binding: Dict[str, Tuple[FuType, int]] = {}
    # busy_until[(fu_type, idx)]: first step the unit is free again.
    busy_until: Dict[Tuple[FuType, int], int] = {
        unit: 0 for unit in resources.instances()
    }

    scheduled = 0
    step = 0
    total = dfg.num_nodes
    # Upper bound on steps: serialize everything past the last release
    # (defensive guard).
    max_release = max(earliest.values(), default=0)
    guard = max_release + dfg.total_delay() + dfg.num_edges + dfg.num_nodes + 1

    def on_scheduled(node_id: str, start: int) -> None:
        """Release successors whose last predecessor just got a time."""
        finish = start + dfg.delay(node_id)
        for edge in dfg.out_edges(node_id):
            succ = edge.dst
            earliest[succ] = max(earliest[succ], finish + edge.weight)
            remaining_preds[succ] -= 1
            if remaining_preds[succ] == 0:
                ready[succ] = None
                arrival[succ] = earliest[succ]

    while scheduled < total:
        if step > guard:
            raise InfeasibleError(
                f"list scheduler exceeded {guard} steps; "
                "graph or resources are inconsistent"
            )
        # Structural ops issue as soon as they are startable, outside the
        # unit-allocation loop.
        for node_id in list(ready):
            if dfg.node(node_id).op.is_structural and earliest[node_id] <= step:
                del ready[node_id]
                start_times[node_id] = step
                scheduled += 1
                on_scheduled(node_id, step)

        startable = [
            n
            for n in ready
            if earliest[n] <= step and not dfg.node(n).op.is_structural
        ]
        if priority is ListPriority.READY_ORDER:
            startable.sort(key=lambda n: (arrival[n], order_index[n]))
        else:
            startable.sort(key=lambda n: keys[n])

        for node_id in startable:
            fu_type = resources.fu_for_op(dfg.node(node_id).op)
            unit = _free_unit(
                busy_until, resources, fu_type, step,
                bank=bank_of_op.get(node_id),
            )
            if unit is None:
                continue
            del ready[node_id]
            start_times[node_id] = step
            binding[node_id] = unit
            busy_until[unit] = step + max(1, dfg.delay(node_id))
            scheduled += 1
            on_scheduled(node_id, step)

        step += 1
        if ready:
            floor = min(earliest[n] for n in ready)
            if floor > step:
                # Every ready op is still before its release; skip the
                # provably idle steps (hierarchical window releases can
                # be far in the future, in global time).
                step = floor

    return Schedule(
        dfg=dfg,
        start_times=start_times,
        binding=binding,
        resources=resources,
        algorithm=f"list/{priority.value}",
    )


def _priority_keys(
    dfg: DataFlowGraph,
    priority: ListPriority,
    order_index: Dict[str, int],
):
    """Sort keys per node; lower sorts first."""
    if priority is ListPriority.SINK_DISTANCE:
        tdist = sink_distances(dfg)
        return {n: (-tdist[n], order_index[n]) for n in dfg.nodes()}
    if priority is ListPriority.MOBILITY:
        # Mobility is the initial frame width minus one; the frame
        # engine serves it straight off the cached graph view.
        frames = FrameEngine(dfg)
        return {n: (frames.width(n) - 1, order_index[n]) for n in dfg.nodes()}
    if priority is ListPriority.READY_ORDER:
        return {n: (0, order_index[n]) for n in dfg.nodes()}
    raise ValueError(f"unknown priority {priority!r}")


def _free_unit(
    busy_until: Dict[Tuple[FuType, int], int],
    resources: ResourceSet,
    fu_type: Optional[FuType],
    step: int,
    bank: Optional[int] = None,
) -> Optional[Tuple[FuType, int]]:
    """First free instance of ``fu_type`` at ``step``, or ``None``.

    ``bank`` restricts the scan to that bank's port slice of a banked
    type; ``None`` (flat types, or a banked op on an unbanked set)
    scans every instance.
    """
    if fu_type is None:
        return None
    lo, hi = 0, resources.count(fu_type)
    if bank is not None and fu_type.banking is not None:
        ports = fu_type.banking[1]
        lo, hi = bank * ports, (bank + 1) * ports
    for index in range(lo, hi):
        unit = (fu_type, index)
        if busy_until[unit] <= step:
            return unit
    return None
