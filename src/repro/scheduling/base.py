"""Hard-schedule container and validity checking.

A *hard* schedule (the paper's terminology) fixes a start step for every
operation — a total order.  :class:`Schedule` also optionally carries a
binding (which concrete functional unit runs each op), produced by the
list scheduler and by threaded-schedule hardening (where the thread *is*
the unit — the paper's "each thread corresponds to one functional unit").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import SchedulingError
from repro.ir.dfg import DataFlowGraph
from repro.scheduling.resources import FuType, ResourceSet, bank_assignment

#: Format tag of the JSON-safe schedule artifact (see
#: :func:`schedule_artifact`).
SCHEDULE_ARTIFACT_FORMAT = "repro-schedule-v1"


@dataclass
class Schedule:
    """A mapping from operations to start steps (plus optional binding).

    Attributes
    ----------
    dfg:
        The scheduled graph (not copied; treat as read-only).
    start_times:
        Operation id to start control step (0-based).
    binding:
        Optional op id to ``(fu_type, instance_index)``.
    resources:
        The constraint the schedule was produced under, if any.
    algorithm:
        Free-form provenance tag (e.g. ``"list"``, ``"threaded/meta=dfs"``).
    meta:
        Optional JSON-safe provenance extras (the hierarchical
        orchestrator records its round/partition counts here); carried
        into the schedule artifact only when set, so ordinary
        schedules keep their historical artifact bytes.
    """

    dfg: DataFlowGraph
    start_times: Dict[str, int]
    binding: Dict[str, Tuple[FuType, int]] = field(default_factory=dict)
    resources: Optional[ResourceSet] = None
    algorithm: str = ""
    meta: Optional[Dict[str, Any]] = None

    def start(self, node_id: str) -> int:
        return self.start_times[node_id]

    def finish(self, node_id: str) -> int:
        """First step at which the result is available."""
        return self.start_times[node_id] + self.dfg.delay(node_id)

    @property
    def length(self) -> int:
        """Total number of control steps (the paper's "states")."""
        if not self.start_times:
            return 0
        return max(self.finish(n) for n in self.start_times)

    def ops_at(self, step: int) -> List[str]:
        """Ids of operations *starting* at ``step`` (insertion order)."""
        return [n for n, s in self.start_times.items() if s == step]

    def ops_running_at(self, step: int) -> List[str]:
        """Ids of operations occupying ``step`` (multi-cycle aware)."""
        return [
            n
            for n, s in self.start_times.items()
            if s <= step < s + max(1, self.dfg.delay(n))
        ]

    def usage_profile(self, resources: Optional[ResourceSet] = None):
        """Per-step, per-FU-type occupancy: ``{step: {fu_type: count}}``.

        Structural ops are excluded.  ``resources`` defaults to the
        schedule's own constraint and is used only for op->type mapping;
        pass one explicitly for unconstrained schedules.
        """
        resources = resources or self.resources
        if resources is None:
            raise SchedulingError(
                "usage_profile needs a ResourceSet to map ops to unit types"
            )
        profile: Dict[int, Dict[FuType, int]] = {}
        for node in self.dfg.node_objects():
            if node.op.is_structural or node.id not in self.start_times:
                continue
            fu_type = resources.fu_for_op(node.op)
            if fu_type is None:
                continue
            start = self.start_times[node.id]
            for step in range(start, start + max(1, node.delay)):
                profile.setdefault(step, {})
                profile[step][fu_type] = profile[step].get(fu_type, 0) + 1
        return profile

    def table(self) -> str:
        """Render as a step-by-step text table (for reports/examples)."""
        lines = []
        for step in range(self.length):
            started = ", ".join(
                self.dfg.node(n).label() for n in sorted(self.ops_at(step))
            )
            lines.append(f"step {step:3d}: {started}")
        return "\n".join(lines)

    def __repr__(self):
        tag = f", algorithm={self.algorithm!r}" if self.algorithm else ""
        return f"Schedule(length={self.length}, ops={len(self.start_times)}{tag})"


def schedule_artifact(
    schedule: Schedule,
    input_ops: Optional[Iterable[str]] = None,
) -> Dict[str, Any]:
    """Serialize a hard schedule to a JSON-safe artifact dict.

    The artifact carries the full scheduling decision — every op's
    start step and (when bound) its functional unit, written
    ``"alu[0]"`` — so downstream consumers (feedback-guided rescheduling,
    binding, RTL generation) can rebuild the schedule without re-running
    the scheduler.  Pass ``input_ops`` (the node ids of the *input*
    graph, captured before scheduling) to also record soft-scheduling
    insertions: ops the scheduler grew into the graph (spill
    stores/loads, wire-delay hops) that were not part of the input.
    """
    ops: Dict[str, Dict[str, Any]] = {}
    for node_id, step in schedule.start_times.items():
        bound = schedule.binding.get(node_id)
        ops[node_id] = {
            "step": step,
            "unit": None if bound is None else f"{bound[0].name}[{bound[1]}]",
        }
    inserted: List[str] = []
    if input_ops is not None:
        known = set(input_ops)
        inserted = sorted(op for op in schedule.start_times if op not in known)
    artifact = {
        "format": SCHEDULE_ARTIFACT_FORMAT,
        "algorithm": schedule.algorithm,
        "length": schedule.length,
        "ops": ops,
        "inserted": inserted,
    }
    if schedule.meta is not None:
        artifact["meta"] = schedule.meta
    return artifact


def artifact_start_times(artifact: Dict[str, Any]) -> Dict[str, int]:
    """Extract ``op id -> start step`` from a schedule artifact."""
    if artifact.get("format") != SCHEDULE_ARTIFACT_FORMAT:
        raise SchedulingError(
            f"not a {SCHEDULE_ARTIFACT_FORMAT} artifact "
            f"(format={artifact.get('format')!r})"
        )
    return {
        op: int(entry["step"]) for op, entry in artifact["ops"].items()
    }


def validate_schedule(
    schedule: Schedule,
    resources: Optional[ResourceSet] = None,
    check_binding: bool = True,
    raise_on_error: bool = True,
) -> List[str]:
    """Check a hard schedule for validity.

    Verifies that

    1. every graph operation has a start time >= 0,
    2. every dependence ``p -> q`` satisfies
       ``start(q) >= start(p) + delay(p) + weight(p, q)``,
    3. per-step usage never exceeds the resource constraint (for a
       banked memory type, additionally per *bank*: concurrent accesses
       to one bank never exceed its port count), and
    4. the binding (if present and ``check_binding``) maps each op to a
       compatible unit and never double-books a unit in a step — for a
       banked type the bound unit must also belong to the op's bank.
    """
    problems: List[str] = []
    dfg = schedule.dfg
    resources = resources or schedule.resources

    for node in dfg.node_objects():
        if node.id not in schedule.start_times:
            problems.append(f"op {node.id} has no start time")
        elif schedule.start_times[node.id] < 0:
            problems.append(
                f"op {node.id} starts at negative step "
                f"{schedule.start_times[node.id]}"
            )

    for edge in dfg.edges():
        if edge.src not in schedule.start_times:
            continue
        if edge.dst not in schedule.start_times:
            continue
        earliest = (
            schedule.start_times[edge.src]
            + dfg.delay(edge.src)
            + edge.weight
        )
        actual = schedule.start_times[edge.dst]
        if actual < earliest:
            problems.append(
                f"dependence violated: {edge.dst} starts at {actual}, "
                f"but {edge.src} (+weight) finishes at {earliest}"
            )

    if resources is not None:
        for step, usage in sorted(schedule.usage_profile(resources).items()):
            for fu_type, used in usage.items():
                available = resources.count(fu_type)
                if used > available:
                    problems.append(
                        f"step {step}: {used} {fu_type.name} ops in flight, "
                        f"only {available} units"
                    )
        banked = resources.banked_fu()
        if banked is not None:
            problems.extend(_bank_overflows(schedule, resources, banked))

    if check_binding and schedule.binding:
        banked = resources.banked_fu() if resources is not None else None
        bank_of = (
            bank_assignment(dfg, banked.banking[0])
            if banked is not None else {}
        )
        occupancy: Dict[Tuple[str, int, int], str] = {}
        for node_id, (fu_type, index) in schedule.binding.items():
            node = dfg.node(node_id)
            if not fu_type.supports(node.op):
                problems.append(
                    f"op {node_id} ({node.op.name}) bound to incompatible "
                    f"unit {fu_type.name}[{index}]"
                )
            if resources is not None and index >= resources.count(fu_type):
                problems.append(
                    f"op {node_id} bound to {fu_type.name}[{index}] but only "
                    f"{resources.count(fu_type)} units exist"
                )
            if node_id in bank_of and fu_type.banking is not None:
                bound_bank = resources.bank_of_unit(fu_type, index)
                if bound_bank != bank_of[node_id]:
                    problems.append(
                        f"op {node_id} belongs to mem bank "
                        f"{bank_of[node_id]} but is bound to "
                        f"{fu_type.name}[{index}] (bank {bound_bank})"
                    )
            if node_id not in schedule.start_times:
                continue
            start = schedule.start_times[node_id]
            for step in range(start, start + max(1, node.delay)):
                key = (fu_type.name, index, step)
                if key in occupancy:
                    problems.append(
                        f"unit {fu_type.name}[{index}] double-booked at step "
                        f"{step} by {occupancy[key]} and {node_id}"
                    )
                else:
                    occupancy[key] = node_id

    if problems and raise_on_error:
        raise SchedulingError("; ".join(problems))
    return problems


def _bank_overflows(
    schedule: Schedule, resources: ResourceSet, banked: FuType
) -> List[str]:
    """Per-step, per-bank access counts that exceed the port limit."""
    banks, ports = banked.banking
    bank_of = bank_assignment(schedule.dfg, banks)
    usage: Dict[Tuple[int, int], int] = {}
    for node in schedule.dfg.node_objects():
        if node.id not in bank_of or node.id not in schedule.start_times:
            continue
        start = schedule.start_times[node.id]
        for step in range(start, start + max(1, node.delay)):
            key = (step, bank_of[node.id])
            usage[key] = usage.get(key, 0) + 1
    return [
        f"step {step}: {used} accesses to mem bank {bank}, "
        f"only {ports} ports"
        for (step, bank), used in sorted(usage.items())
        if used > ports
    ]
