"""Multi-replica job dispatching for the scheduling service.

``repro dispatch`` fronts N ``repro serve`` replicas with a
consistent-hash router: every ``POST /schedule`` body is validated at
the edge, keyed by its engine cache key, and proxied to the replica
that owns that key on the ring — so duplicate-heavy soft-scheduling
traffic keeps hitting the replica whose sharded result store already
holds it, and a unique job is computed once *cluster-wide*.

Quickstart::

    repro serve --port 8081 &
    repro serve --port 8082 &
    repro dispatch --port 8080 \
        --replica 127.0.0.1:8081 --replica 127.0.0.1:8082

Clients speak to the router exactly as they would to a single replica
(same endpoints, same response bytes); replica failures fail over along
the ring and a background health loop flips membership.

Modules: :mod:`~repro.dispatch.ring` (the consistent-hash ring),
:mod:`~repro.dispatch.router` (the asyncio router),
:mod:`~repro.dispatch.proxy` (router→replica HTTP exchanges),
:mod:`~repro.dispatch.metrics` (router counters),
:mod:`~repro.dispatch.testing` (the :class:`ReplicaSet` subprocess
harness behind the tests and the CI ``dispatch-smoke`` job).
"""

from repro.dispatch.metrics import DispatchMetrics
from repro.dispatch.ring import DEFAULT_VNODES, HashRing
from repro.dispatch.router import (
    DispatchRouter,
    parse_replica,
    run_router,
)
from repro.dispatch.testing import ReplicaProcess, ReplicaSet

__all__ = [
    "DEFAULT_VNODES",
    "DispatchMetrics",
    "DispatchRouter",
    "HashRing",
    "ReplicaProcess",
    "ReplicaSet",
    "parse_replica",
    "run_router",
]
