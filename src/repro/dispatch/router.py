"""The multi-replica job dispatcher (``repro dispatch``).

One asyncio process that fronts N ``repro serve`` replicas:

* ``POST /schedule`` bodies are validated with the exact same
  :func:`repro.serve.protocol.parse_request` the replicas use (bad
  requests bounce at the edge, before any network hop), the engine
  cache key is computed via :class:`repro.engine.keys.CacheKeyResolver`,
  and the request is proxied to the replica that owns that key on a
  consistent-hash ring — so each replica's sharded result store stays
  hot and a unique job is computed once *cluster-wide*.  Constraint
  scenarios (``scenario`` / ``io_schedule`` fields) need no routing
  special-casing: they are part of the spec's cache key, so two
  requests differing only in scenario shard to their own owners.
* Duplicate in-flight requests coalesce at the router: twins attach to
  the owner exchange's future and never open a connection of their own.
* Replica failures fail over: connection refused, a 5xx, and a
  drain-in-progress 503 all retry the next distinct ring position with
  the failed replica excluded; transport-level failures also eject the
  replica from the ring until a health probe readmits it.
* A background health loop probes every replica's ``/healthz`` and
  flips ring membership accordingly.
* ``GET /metrics`` aggregates: the router's own counters, each
  replica's live ``/metrics``, and cluster totals summed across them.

Determinism contract: the router *relays replica response bytes
verbatim* (see :mod:`repro.dispatch.proxy`), so a given request body
returns the same bytes whether the client asked a replica directly or
went through the dispatcher.  Volatile routing provenance travels in
headers (``X-Repro-Replica``, ``X-Repro-Attempts``).
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from typing import Dict, List, Optional, Set, Tuple

from repro.engine.job import JobSpec
from repro.engine.keys import CacheKeyResolver
from repro.errors import ReproError
from repro.resilience import CircuitBreaker, Deadline, RetryPolicy
from repro.serve import protocol
from repro.serve.http import Body, HttpServerCore, StreamBody, parse_query
from repro.serve.stream import sse_frame
from repro.dispatch import proxy
from repro.dispatch.metrics import CLUSTER_SUM_FIELDS, DispatchMetrics
from repro.dispatch.ring import DEFAULT_VNODES, HashRing
from repro.store.peers import parse_address

#: Seconds between health-probe sweeps over the replica set.
DEFAULT_HEALTH_INTERVAL_S = 1.0

#: Per-probe timeout (a replica slower than this counts as down).
DEFAULT_PROBE_TIMEOUT_S = 2.0

#: End-to-end timeout for one proxied /schedule exchange.
DEFAULT_REQUEST_TIMEOUT_S = 120.0

#: How long a graceful shutdown waits for in-flight proxied requests.
DEFAULT_DRAIN_TIMEOUT_S = 10.0

#: Consecutive failures that open a replica's circuit breaker.
DEFAULT_BREAKER_THRESHOLD = 3

#: Seconds an open replica breaker waits before admitting a probe.
DEFAULT_BREAKER_RESET_S = 5.0

#: Base backoff between failover attempts within one routed request.
DEFAULT_RETRY_BASE_S = 0.025

#: Backoff cap for the failover walk (one walk, short waits).
DEFAULT_RETRY_MAX_BACKOFF_S = 0.25

#: Relayed-stream bytes kept to judge whether the replica's SSE stream
#: reached a terminal frame before the connection ended.
_STREAM_TAIL_BYTES = 512

#: SSE event names that legitimately end an improvement stream.
_TERMINAL_EVENTS = (b"optimal", b"exhausted", b"error")

#: One routed answer: status, extra headers, raw body bytes to relay.
Routed = Tuple[int, Dict[str, str], bytes]


def _stream_terminal(tail: bytes) -> bool:
    """Did ``tail`` end with a complete terminal SSE frame?"""
    if not tail.endswith(b"\n\n"):
        return False
    start = tail.rfind(b"event: ")
    if start < 0:
        return False
    name = tail[start + len(b"event: "):].split(b"\n", 1)[0].strip()
    return name in _TERMINAL_EVENTS


def parse_replica(text: str) -> Tuple[str, int]:
    """``HOST:PORT`` (or bare ``PORT`` for localhost) -> (host, port).

    Replica addresses and peer addresses are the same notation — a
    replica's ``--peer`` list is just the other replicas' addresses —
    so this delegates to :func:`repro.store.peers.parse_address` and
    exists as the dispatch-flavored name for it.

    >>> parse_replica("10.0.0.5:8791")
    ('10.0.0.5', 8791)
    >>> parse_replica("8791")
    ('127.0.0.1', 8791)
    """
    return parse_address(text)


class DispatchRouter(HttpServerCore):
    """Consistent-hash router over ``repro serve`` replicas."""

    def __init__(
        self,
        replicas: List[str],
        host: str = "127.0.0.1",
        port: int = 0,
        vnodes: int = DEFAULT_VNODES,
        health_interval_s: float = DEFAULT_HEALTH_INTERVAL_S,
        probe_timeout_s: float = DEFAULT_PROBE_TIMEOUT_S,
        request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
        drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
        retry: Optional[RetryPolicy] = None,
        deadline_ms: Optional[float] = None,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        breaker_reset_s: float = DEFAULT_BREAKER_RESET_S,
    ):
        super().__init__(host=host, port=port)
        if not replicas:
            raise ReproError(
                "a dispatcher needs at least one replica address"
            )
        self.replicas: Dict[str, Tuple[str, int]] = {}
        for text in replicas:
            replica_host, replica_port = parse_replica(text)
            name = f"{replica_host}:{replica_port}"
            if name in self.replicas:
                raise ReproError(f"duplicate replica address {name!r}")
            self.replicas[name] = (replica_host, replica_port)
        self.ring = HashRing(self.replicas, vnodes=vnodes)
        self.health_interval_s = health_interval_s
        self.probe_timeout_s = probe_timeout_s
        self.request_timeout_s = request_timeout_s
        self.drain_timeout_s = drain_timeout_s
        # Failover-walk policy: max_attempts=0 means "walk the whole
        # ring preference", preserving the pre-resilience semantics
        # while still pacing attempts with jittered backoff.
        self.retry = retry or RetryPolicy(
            max_attempts=0,
            base_s=DEFAULT_RETRY_BASE_S,
            max_backoff_s=DEFAULT_RETRY_MAX_BACKOFF_S,
        )
        self.deadline_ms = deadline_ms
        self.metrics = DispatchMetrics()
        self._keys = CacheKeyResolver()
        self._down: Set[str] = set()
        self._breakers: Dict[str, CircuitBreaker] = {
            name: CircuitBreaker(
                failure_threshold=breaker_threshold,
                reset_timeout_s=breaker_reset_s,
            )
            for name in self.replicas
        }
        self._inflight: Dict[protocol.ScheduleRequest, asyncio.Future] = {}
        self._health_tasks: List[asyncio.Task] = []
        self._draining = False

    # ------------------------------------------------------------------
    # Lifecycle.

    async def start(self) -> "DispatchRouter":
        await self.listen()
        loop = asyncio.get_running_loop()
        self._health_tasks = [
            loop.create_task(self._health_loop(name))
            for name in self.replicas
        ]
        return self

    async def stop(self) -> bool:
        """Graceful drain: stop listening, finish in-flight proxying.

        Returns True when every in-flight exchange resolved inside
        ``drain_timeout_s``.
        """
        self._draining = True
        await self.close_listener()
        for task in self._health_tasks:
            task.cancel()
        for task in self._health_tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._health_tasks = []
        drained = True
        deadline = (
            asyncio.get_running_loop().time() + self.drain_timeout_s
        )
        while self._inflight:
            waiters = [
                asyncio.shield(f) for f in list(self._inflight.values())
            ]
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                drained = False
                break
            done, pending = await asyncio.wait(
                waiters, timeout=remaining
            )
            for waiter in pending:
                waiter.cancel()
            if pending:
                drained = False
                break
        return drained

    # ------------------------------------------------------------------
    # Replica membership.

    @property
    def up_replicas(self) -> List[str]:
        return [name for name in self.replicas if name not in self._down]

    def _eject(self, name: str) -> None:
        if name not in self._down:
            self._down.add(name)
            self.metrics.ejected += 1

    def _readmit(self, name: str) -> None:
        if name in self._down:
            self._down.discard(name)
            self.metrics.readmitted += 1

    def _record_breaker(self, name: str, record) -> None:
        """Run one breaker transition, folding deltas into metrics."""
        breaker = self._breakers[name]
        opened, closed = breaker.opened_total, breaker.closed_total
        record()
        self.metrics.breaker_opened += breaker.opened_total - opened
        self.metrics.breaker_closed += breaker.closed_total - closed

    def _candidates(self, key: str) -> List[str]:
        """Ring preference filtered by membership and breaker state.

        Falls back to the unfiltered preference walk when the filter
        empties it: probes may simply not have noticed a recovery yet,
        and trying everything beats refusing outright.
        """
        candidates = [
            name
            for name in self.ring.preference(key)
            if name not in self._down and self._breakers[name].allow()
        ]
        return candidates or self.ring.preference(key)

    async def _probe(self, name: str) -> bool:
        """One health probe; True when the replica answered 200."""
        replica_host, replica_port = self.replicas[name]
        try:
            status, _, _ = await proxy.exchange(
                replica_host,
                replica_port,
                "GET",
                "/healthz",
                timeout=self.probe_timeout_s,
            )
        except (OSError, asyncio.TimeoutError, proxy.ProxyProtocolError):
            return False
        return status == 200

    def _apply_probe(self, name: str, ok: bool) -> None:
        """Fold one probe outcome into membership and breaker state.

        Probe-driven readmission is unified: a healthy probe both
        readmits the replica into the ring and feeds the breaker a
        success, so an open breaker closes through the same evidence
        that ends an ejection.
        """
        breaker = self._breakers[name]
        if ok:
            self._record_breaker(name, breaker.record_success)
            self._readmit(name)
        else:
            self._record_breaker(name, breaker.record_failure)
            self._eject(name)

    async def check_replicas(self) -> Dict[str, bool]:
        """Probe every replica once and update ring membership."""
        names = list(self.replicas)
        healthy = await asyncio.gather(
            *(self._probe(name) for name in names)
        )
        states: Dict[str, bool] = {}
        for name, ok in zip(names, healthy):
            states[name] = ok
            self._apply_probe(name, ok)
        return states

    def _probe_stagger_s(self, name: str) -> float:
        """Deterministic per-replica phase offset within one interval.

        Spreads probes across the health interval so N replicas are
        not all hit at the same instant every period (a synchronized
        probe burst looks like load to a struggling replica).  Hashing
        the replica name keeps the offset stable across restarts.
        """
        digest = hashlib.sha256(name.encode("utf-8")).digest()
        fraction = int.from_bytes(digest[:4], "big") / 2**32
        return fraction * self.health_interval_s

    async def _health_loop(self, name: str) -> None:
        await asyncio.sleep(self._probe_stagger_s(name))
        while True:
            try:
                ok = await self._probe(name)
                self._apply_probe(name, ok)
            except asyncio.CancelledError:
                raise
            except Exception:
                # A probe must never kill its loop; probe failures are
                # already folded into membership.
                pass
            await asyncio.sleep(self.health_interval_s)

    # ------------------------------------------------------------------
    # Routing.

    def on_request_error(self) -> None:
        self.metrics.errors += 1

    async def dispatch(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        query: str = "",
    ) -> Tuple[int, Body, Dict[str, str]]:
        self.metrics.requests += 1
        if path == "/schedule/stream":
            if method != "GET":
                self.metrics.errors += 1
                return 405, protocol.error_payload(
                    "use GET /schedule/stream"
                ), {}
            return await self._handle_stream(query, headers)
        if path == "/schedule":
            if method != "POST":
                self.metrics.errors += 1
                return 405, protocol.error_payload(
                    "use POST /schedule"
                ), {}
            return await self._handle_schedule(body, headers)
        if path == "/healthz":
            if method != "GET":
                self.metrics.errors += 1
                return 405, protocol.error_payload("use GET /healthz"), {}
            up = self.up_replicas
            status = 503 if self._draining or not up else 200
            return status, {
                "status": "draining" if self._draining else (
                    "ok" if up else "no-replicas"
                ),
                "role": "dispatcher",
                "replicas_up": len(up),
                "replicas_total": len(self.replicas),
                "in_flight": self.metrics.in_flight,
            }, {}
        if path == "/metrics":
            if method != "GET":
                self.metrics.errors += 1
                return 405, protocol.error_payload("use GET /metrics"), {}
            return 200, await self.cluster_metrics(), {}
        self.metrics.errors += 1
        return 404, protocol.error_payload(
            f"no such endpoint {path!r}; try POST /schedule, "
            "GET /healthz, GET /metrics"
        ), {}

    def _deadline_for(self, headers: Dict[str, str]) -> Deadline:
        """The request's deadline budget (header wins over the flag)."""
        return Deadline.from_headers(
            headers, default_ms=self.deadline_ms
        )

    def _deadline_expired(self) -> Routed:
        self.metrics.deadline_exhausted += 1
        self.metrics.failed += 1
        return 504, {}, protocol.encode_json(
            protocol.error_payload(
                "deadline budget exhausted before a replica answered"
            )
        )

    async def _handle_schedule(
        self, body: bytes, request_headers: Dict[str, str]
    ) -> Tuple[int, Body, Dict[str, str]]:
        try:
            request = protocol.parse_request(body)
        except protocol.ProtocolError as exc:
            self.metrics.errors += 1
            return exc.status, protocol.error_payload(str(exc)), {}
        if self._draining:
            self.metrics.errors += 1
            return 503, protocol.error_payload(
                "dispatcher is draining; retry shortly"
            ), {"Retry-After": "1"}
        deadline = self._deadline_for(request_headers)
        if deadline.expired():
            self.metrics.errors += 1
            status, extra, payload = self._deadline_expired()
            return status, payload, extra

        self.metrics.schedule_requests += 1

        # Coalesce at the router: a request identical to one already
        # being proxied (same job *and* same shaping flags, so the
        # response bytes match) attaches to that exchange's future and
        # never costs a network hop.  Shield per waiter: one client
        # disconnecting must not cancel its twins' exchange.
        future = self._inflight.get(request)
        if future is not None:
            self.metrics.coalesced += 1
            status, extra, payload = await asyncio.shield(future)
            return status, payload, extra

        future = asyncio.get_running_loop().create_future()
        self._inflight[request] = future
        self.metrics.in_flight += 1
        started = time.monotonic()
        try:
            routed = await self._route(request, body, deadline)
            if not future.done():
                future.set_result(routed)
        except BaseException as exc:
            if not future.done():
                future.set_exception(exc)
                # The exception is delivered to every coalesced twin;
                # retrieve it here too so asyncio never logs it as
                # unretrieved when there are no twins.
                future.exception()
            raise
        finally:
            self._inflight.pop(request, None)
            self.metrics.in_flight -= 1
            self.metrics.observe_latency(time.monotonic() - started)
        status, extra, payload = routed
        return status, payload, extra

    async def _route(
        self,
        request: protocol.ScheduleRequest,
        body: bytes,
        deadline: Deadline,
    ) -> Routed:
        """Proxy one unique request along its ring preference walk."""
        key = self._keys.key(request.spec)
        candidates = self._candidates(key)
        if not candidates:
            self.metrics.failed += 1
            return 503, {"Retry-After": "1"}, protocol.encode_json(
                protocol.error_payload("no replicas configured")
            )

        failures: List[str] = []
        for attempt, name in enumerate(candidates):
            replica_host, replica_port = self.replicas[name]
            if attempt > 0:
                if not self.retry.allows(attempt + 1):
                    failures.append("retry budget exhausted")
                    break
                self.metrics.retried += 1
                await asyncio.sleep(
                    deadline.clamp(self.retry.backoff_s(attempt))
                )
            if deadline.expired():
                return self._deadline_expired()
            try:
                status, headers, payload = await proxy.exchange(
                    replica_host,
                    replica_port,
                    "POST",
                    "/schedule",
                    body=body,
                    headers=deadline.headers(),
                    timeout=deadline.clamp(self.request_timeout_s),
                )
            except (
                OSError,
                asyncio.TimeoutError,
                proxy.ProxyProtocolError,
            ) as exc:
                # Transport-level failure: the replica is gone or
                # wedged.  Eject it now instead of waiting a probe
                # period, and walk on.
                self.metrics.record_failure(name)
                self._record_breaker(
                    name, self._breakers[name].record_failure
                )
                self._eject(name)
                failures.append(
                    f"{name}: {str(exc) or type(exc).__name__}"
                )
                if deadline.expired():
                    return self._deadline_expired()
                continue
            if status >= 500:
                # 5xx and drain-in-progress 503s fail over; the next
                # ring position computes the same deterministic answer.
                self.metrics.record_failure(name)
                self._record_breaker(
                    name, self._breakers[name].record_failure
                )
                if status == 503:
                    self._eject(name)  # draining; probes readmit later
                failures.append(f"{name}: HTTP {status}")
                continue
            self.metrics.record_routed(name)
            self._record_breaker(
                name, self._breakers[name].record_success
            )
            if attempt > 0:
                self.metrics.failed_over += 1
            extra = {
                "X-Repro-Replica": name,
                "X-Repro-Attempts": str(attempt + 1),
            }
            # Retry-After keeps a relayed 429's backoff contract
            # intact: through the router or direct, same behaviour.
            for passthrough in (
                "x-repro-source",
                "x-repro-key",
                "retry-after",
            ):
                if passthrough in headers:
                    extra[passthrough.title()] = headers[passthrough]
            return status, extra, payload

        self.metrics.failed += 1
        return 502, {"Retry-After": "1"}, protocol.encode_json(
            protocol.error_payload(
                "all replicas failed for this job: " + "; ".join(failures)
            )
        )

    async def _relay_stream(self, chunks) -> "asyncio.AsyncIterator":
        """Relay replica SSE bytes verbatim, appending a terminal
        ``error`` event if the replica dies mid-stream.

        A healthy stream passes through untouched (byte-determinism:
        the client sees exactly what the replica sent).  When the
        upstream connection ends without a terminal frame — replica
        crash, reset, timeout — the client gets one structured SSE
        ``error`` event instead of a silent hangup, and the router
        counts ``stream_broken``.
        """
        tail = b""
        try:
            async for chunk in chunks:
                if isinstance(chunk, str):
                    chunk = chunk.encode("utf-8")
                tail = (tail + chunk)[-_STREAM_TAIL_BYTES:]
                yield chunk
        except (OSError, asyncio.TimeoutError):
            tail = b"broken"  # force the non-terminal branch below
        finally:
            await chunks.aclose()
        if not _stream_terminal(tail):
            self.metrics.stream_broken += 1
            yield sse_frame(
                {
                    "type": "error",
                    "error": (
                        "upstream replica disconnected mid-stream"
                    ),
                }
            ).encode("utf-8")

    async def _handle_stream(
        self, query: str, request_headers: Dict[str, str]
    ) -> Tuple[int, Body, Dict[str, str]]:
        """Relay ``GET /schedule/stream`` to the replica owning its key.

        Routing mirrors ``/schedule``: the canonical ``bnb-anytime``
        cache key picks the ring position, so a stream request lands on
        the replica whose store already holds (and will keep) that
        graph's canonical entry.  Failover happens *before* the stream
        starts — once a replica answers 200 its SSE bytes are relayed
        verbatim; a mid-stream death surfaces to the client as a
        terminal structured ``error`` event (see ``_relay_stream``).
        """
        graph = parse_query(query).get("graph")
        if not graph:
            self.metrics.errors += 1
            return 400, protocol.error_payload(
                "query parameter 'graph' is required"
            ), {}
        resources = parse_query(query).get(
            "resources", protocol.DEFAULT_RESOURCES
        )
        try:
            # The canonical improver key: budget parameters shape the
            # run, not the entry, so they don't influence routing.
            spec = JobSpec.make(graph, resources, "bnb-anytime")
            key = self._keys.key(spec)
        except ReproError as exc:
            self.metrics.errors += 1
            return 400, protocol.error_payload(str(exc)), {}
        if self._draining:
            self.metrics.errors += 1
            return 503, protocol.error_payload(
                "dispatcher is draining; retry shortly"
            ), {"Retry-After": "1"}
        deadline = self._deadline_for(request_headers)
        if deadline.expired():
            self.metrics.errors += 1
            status, extra, payload = self._deadline_expired()
            return status, payload, extra

        candidates = self._candidates(key)
        if not candidates:
            self.metrics.failed += 1
            return 503, {"error": "no replicas configured"}, {
                "Retry-After": "1"
            }

        target = f"/schedule/stream?{query}" if query else "/schedule/stream"
        failures: List[str] = []
        for attempt, name in enumerate(candidates):
            replica_host, replica_port = self.replicas[name]
            if attempt > 0:
                if not self.retry.allows(attempt + 1):
                    failures.append("retry budget exhausted")
                    break
                self.metrics.retried += 1
                await asyncio.sleep(
                    deadline.clamp(self.retry.backoff_s(attempt))
                )
            if deadline.expired():
                status, extra, payload = self._deadline_expired()
                return status, payload, extra
            try:
                status, headers, payload, chunks = await proxy.open_stream(
                    replica_host,
                    replica_port,
                    target,
                    timeout=deadline.clamp(self.request_timeout_s),
                )
            except (
                OSError,
                asyncio.TimeoutError,
                proxy.ProxyProtocolError,
            ) as exc:
                self.metrics.record_failure(name)
                self._record_breaker(
                    name, self._breakers[name].record_failure
                )
                self._eject(name)
                failures.append(
                    f"{name}: {str(exc) or type(exc).__name__}"
                )
                continue
            if status >= 500:
                if chunks is not None:
                    await chunks.aclose()
                self.metrics.record_failure(name)
                self._record_breaker(
                    name, self._breakers[name].record_failure
                )
                if status == 503:
                    self._eject(name)
                failures.append(f"{name}: HTTP {status}")
                continue
            self.metrics.record_routed(name)
            self._record_breaker(
                name, self._breakers[name].record_success
            )
            if attempt > 0:
                self.metrics.failed_over += 1
            extra = {
                "X-Repro-Replica": name,
                "X-Repro-Attempts": str(attempt + 1),
            }
            for passthrough in ("x-repro-key", "retry-after"):
                if passthrough in headers:
                    extra[passthrough.title()] = headers[passthrough]
            if chunks is None:
                # A pre-stream refusal (400, 429, ...): relay the JSON
                # body verbatim, exactly like the /schedule path.
                return status, payload, extra
            return status, StreamBody(self._relay_stream(chunks)), extra

        self.metrics.failed += 1
        return 502, {"Retry-After": "1"}, protocol.encode_json(
            protocol.error_payload(
                "all replicas failed for this stream: "
                + "; ".join(failures)
            )
        )

    # ------------------------------------------------------------------
    # Aggregated metrics.

    async def _scrape(self, name: str) -> Dict:
        replica_host, replica_port = self.replicas[name]
        try:
            status, _, payload = await proxy.exchange(
                replica_host,
                replica_port,
                "GET",
                "/metrics",
                timeout=self.probe_timeout_s,
            )
        except (
            OSError,
            asyncio.TimeoutError,
            proxy.ProxyProtocolError,
        ) as exc:
            return {
                "up": False,
                "error": str(exc) or type(exc).__name__,
            }
        if status != 200:
            return {"up": False, "error": f"HTTP {status}"}
        try:
            metrics = protocol.decode_response(payload)
        except ValueError as exc:
            return {"up": False, "error": f"bad metrics body: {exc}"}
        return {"up": True, "metrics": metrics}

    async def cluster_metrics(self) -> Dict:
        """The aggregated ``/metrics`` document.

        Three sections: ``router`` (this process's counters),
        ``replicas`` (each replica's live ``/metrics``, or its scrape
        error), and ``cluster`` (sums across the replicas that
        answered — the cluster-wide one-compute-per-unique-key
        invariant is checked against ``cluster.computed``).
        """
        names = list(self.replicas)
        scraped = await asyncio.gather(
            *(self._scrape(name) for name in names)
        )
        replicas = dict(zip(names, scraped))
        totals = {
            "replicas_up": sum(
                1 for entry in replicas.values() if entry["up"]
            ),
            "replicas_total": len(replicas),
        }
        for field in CLUSTER_SUM_FIELDS:
            totals[field] = sum(
                entry["metrics"].get(field, 0)
                for entry in replicas.values()
                if entry["up"]
            )
        return {
            "router": {
                **self.metrics.snapshot(),
                "ring": {
                    "members": list(self.ring.members),
                    "vnodes": self.ring.vnodes,
                    "down": sorted(self._down),
                    "breakers": {
                        name: breaker.snapshot()
                        for name, breaker in self._breakers.items()
                    },
                },
            },
            "replicas": replicas,
            "cluster": totals,
        }


async def _run_until_signal(router: DispatchRouter) -> bool:
    """Serve until SIGINT/SIGTERM, then drain; True = drained clean."""
    import signal

    loop = asyncio.get_running_loop()
    stop_event = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop_event.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix event loops
    await router.start()
    print(
        f"repro dispatch: listening on http://{router.host}:{router.port}"
        f" fronting {len(router.replicas)} replica(s): "
        + ", ".join(router.replicas),
        flush=True,
    )
    serve_task = asyncio.ensure_future(router.serve_forever())
    await stop_event.wait()
    print("repro dispatch: draining...", flush=True)
    serve_task.cancel()
    try:
        await serve_task
    except (asyncio.CancelledError, Exception):
        pass
    drained = await router.stop()
    print(
        "repro dispatch: shutdown "
        + ("clean" if drained else "timed out waiting for in-flight work"),
        flush=True,
    )
    return drained


def run_router(**kwargs) -> int:
    """Blocking entry point used by ``repro dispatch``.

    Exit codes mirror ``repro serve``: 0 = drained clean, 1 = the
    graceful drain timed out with proxied work still in flight.
    """
    router = DispatchRouter(**kwargs)
    try:
        drained = asyncio.run(_run_until_signal(router))
    except KeyboardInterrupt:
        return 0
    return 0 if drained else 1
