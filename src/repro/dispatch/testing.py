"""Subprocess harnesses for dispatcher tests and smoke jobs.

:class:`ReplicaSet` boots N real ``repro serve`` processes on free
ports (``--port 0``), waits until each answers ``/healthz``, and hands
out addresses/clients.  It exists so dispatcher tests exercise the
actual failure modes the router is built for — connection refused,
drain-in-progress 503s, a replica SIGTERMed mid-burst — against real
processes, not mocks.  The CI ``dispatch-smoke`` job drives the same
class.

Replicas run with in-memory caches unless ``cache_root`` is given, in
which case each replica gets its own sharded on-disk store under it
(one directory per replica — stores are per-replica by design; keeping
them hot is the router's job, and ``peer_mesh=True`` connects them
into the cluster tier: every replica gets ``--peer`` flags naming all
the others, so local misses peer-fetch and fresh computes publish).
"""

from __future__ import annotations

import select
import socket
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.errors import ReproError
from repro.serve.client import ServeClient


def free_ports(count: int) -> List[int]:
    """Pre-allocate ``count`` distinct free TCP ports.

    A peer mesh needs every replica's address *before* any replica
    boots (the ``--peer`` flags are static config), which rules out
    ``--port 0``.  Binding then closing reserves nothing, so a raced
    port is possible in principle — in practice the kernel avoids
    handing recently-bound ephemeral ports straight back, and the boot
    fails loudly if it ever happens.
    """
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket()
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


class ReplicaProcess:
    """One booted ``repro serve`` subprocess."""

    def __init__(self, process: subprocess.Popen, port: int):
        self.process = process
        self.port = port
        self.address = f"127.0.0.1:{port}"

    @property
    def alive(self) -> bool:
        return self.process.poll() is None

    def client(self, timeout: float = 60.0) -> ServeClient:
        return ServeClient(port=self.port, timeout=timeout)

    def terminate(self) -> None:
        """SIGTERM: the replica drains gracefully."""
        if self.alive:
            self.process.terminate()

    def kill(self) -> None:
        if self.alive:
            self.process.kill()

    def wait(self, timeout: float = 30.0) -> int:
        """Collect the exit code (kills on timeout rather than hang)."""
        try:
            return self.process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.process.kill()
            return self.process.wait(timeout=10.0)

    def output(self) -> str:
        """Whatever the replica printed (only complete after exit)."""
        if self.process.stdout is None:
            return ""
        try:
            return self.process.stdout.read() or ""
        except ValueError:
            return ""


def start_replica(
    extra_args: Sequence[str] = (),
    boot_timeout: float = 30.0,
    port: int = 0,
) -> ReplicaProcess:
    """Boot one ``repro serve`` and wait for its (announced) port.

    ``port=0`` (the default) lets the OS pick; a peer mesh passes the
    pre-allocated port its peers were told about.
    """
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + boot_timeout
    line = ""
    try:
        # Bound the wait for the announcement line: a replica that
        # wedges before printing must fail the boot, not hang the
        # harness past every outer timeout.
        ready, _, _ = select.select(
            [process.stdout], [], [], boot_timeout
        )
        if not ready:
            raise ReproError(
                f"no output within {boot_timeout:.0f}s"
            )
        line = process.stdout.readline()
        if "listening on" not in line:
            raise ReproError(
                f"replica did not announce its port: {line!r}"
            )
        port = int(line.rsplit(":", 1)[1].split()[0])
    except (ValueError, IndexError, ReproError) as exc:
        process.kill()
        process.wait(timeout=10.0)
        raise ReproError(f"replica failed to boot: {exc} (line {line!r})")
    replica = ReplicaProcess(process, port)
    replica.client().wait_ready(max(1.0, deadline - time.monotonic()))
    return replica


class ReplicaSet:
    """Boot and manage N local ``repro serve`` replicas.

    Use as a context manager::

        with ReplicaSet(count=2, batch_window_ms=2.0) as replicas:
            router = DispatchRouter(replicas.addresses())
            ...

    ``terminate(i)`` / ``kill(i)`` take down one member to exercise
    failover; :meth:`stop` tears down whatever is left.
    """

    def __init__(
        self,
        count: int = 2,
        cache_root: Optional[Path] = None,
        batch_window_ms: Optional[float] = 2.0,
        workers: int = 1,
        extra_args: Sequence[str] = (),
        boot_timeout: float = 30.0,
        peer_mesh: bool = False,
        publish: Optional[str] = None,
        peer_timeout_s: Optional[float] = None,
    ):
        if count < 1:
            raise ReproError(f"need at least 1 replica, got {count}")
        if (publish or peer_timeout_s) and not peer_mesh:
            raise ReproError(
                "publish/peer_timeout_s require peer_mesh=True"
            )
        self.count = count
        self.cache_root = Path(cache_root) if cache_root else None
        self.batch_window_ms = batch_window_ms
        self.workers = workers
        self.extra_args = tuple(extra_args)
        self.boot_timeout = boot_timeout
        self.peer_mesh = peer_mesh
        self.publish = publish
        self.peer_timeout_s = peer_timeout_s
        self.members: List[ReplicaProcess] = []

    # ------------------------------------------------------------------

    def start(self) -> "ReplicaSet":
        assert not self.members, "ReplicaSet already started"
        # Peer config is static per process, so a mesh needs every
        # address up front: pre-allocate the ports, then tell each
        # replica about all the others.  Early boots see their peers
        # as down (fetch errors degrade to local compute) until the
        # rest arrive — exactly the production cold-start behaviour.
        ports = (
            free_ports(self.count)
            if self.peer_mesh
            else [0] * self.count
        )
        try:
            for index in range(self.count):
                args = list(self.extra_args)
                if self.batch_window_ms is not None:
                    args += [
                        "--batch-window-ms", str(self.batch_window_ms)
                    ]
                if self.workers != 1:
                    args += ["--workers", str(self.workers)]
                if self.cache_root is not None:
                    args += [
                        "--cache-dir",
                        str(self.cache_root / f"replica-{index}"),
                    ]
                if self.peer_mesh:
                    for other, peer_port in enumerate(ports):
                        if other != index:
                            args += [
                                "--peer", f"127.0.0.1:{peer_port}"
                            ]
                    if self.publish is not None:
                        args += ["--publish", self.publish]
                    if self.peer_timeout_s is not None:
                        args += [
                            "--peer-timeout", str(self.peer_timeout_s)
                        ]
                self.members.append(
                    start_replica(
                        args,
                        boot_timeout=self.boot_timeout,
                        port=ports[index],
                    )
                )
        except BaseException:
            self.stop()
            raise
        return self

    def stop(self) -> Dict[str, int]:
        """SIGTERM every live member; returns address -> exit code."""
        for member in self.members:
            member.terminate()
        codes = {
            member.address: member.wait() for member in self.members
        }
        self.members = []
        return codes

    def __enter__(self) -> "ReplicaSet":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------

    def addresses(self) -> List[str]:
        return [member.address for member in self.members]

    def client(self, index: int, timeout: float = 60.0) -> ServeClient:
        return self.members[index].client(timeout)

    def terminate(self, index: int) -> ReplicaProcess:
        """SIGTERM one member (graceful drain); returns its handle."""
        member = self.members[index]
        member.terminate()
        return member

    def kill(self, index: int) -> ReplicaProcess:
        member = self.members[index]
        member.kill()
        return member
