"""Router-side counters for the dispatcher's ``GET /metrics``.

These count what the *router* did — routing, coalescing, retries,
failovers, membership changes.  What the *replicas* did (computes,
cache hits, batch flushes) is scraped live from each replica's own
``/metrics`` at snapshot time and aggregated next to these counters;
see :meth:`repro.dispatch.router.DispatchRouter.cluster_metrics`.

Everything here is mutated from the router's event loop, so plain
attributes suffice — no locks.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict

from repro.engine.bench import percentile

#: How many recent routed-request latencies feed the percentiles.
LATENCY_WINDOW = 1024

#: Replica counters summed into the ``cluster`` section of the
#: dispatcher's ``/metrics``.  Only UP replicas contribute — a dead
#: replica's counters vanish from the aggregate (smoke checks that
#: pin cluster totals across a kill must snapshot the victim first).
#: The peer-tier fields come from each replica's ClusterStore merge;
#: replicas running without peers report them as zero.
CLUSTER_SUM_FIELDS = (
    "requests",
    "schedule_requests",
    "computed",
    "cache_hits",
    "coalesced",
    "rejected",
    "errors",
    "batches",
    "compute_seconds_total",
    "peer_served",
    "peer_received",
    "peer_hits",
    "peer_misses",
    "peer_fetch_errors",
    "published",
    "publish_errors",
    # Anytime-improver counters (sse_clients stays out: it is a gauge
    # of open connections, not a monotone counter worth summing).
    "improve_jobs",
    "improved_entries",
    "proved_optimal",
    # Resilience counters: engine worker-crash recovery and the
    # cluster-store publisher's load-shedding drops.
    "worker_crashes",
    "quarantined_jobs",
    "publish_dropped",
    # Constraint-scenario computes, per mode (memory-banked, I/O
    # pinned, reliability-hardened).
    "scenario_memory_jobs",
    "scenario_io_jobs",
    "scenario_reliability_jobs",
)


class DispatchMetrics:
    """Counters and gauges for one router process.

    Counter semantics:

    ``requests``
        Every HTTP request the router parsed, any endpoint or status.
    ``schedule_requests``
        ``POST /schedule`` requests admitted past validation.
    ``routed``
        Requests the router proxied to a replica (coalesced twins
        never reach the network, so ``routed`` counts unique work).
    ``coalesced``
        Requests that attached to an identical in-flight exchange at
        the router — answered without any network hop of their own.
    ``retried``
        Proxy attempts beyond a request's first (every extra ring
        position tried, whether or not it eventually succeeded).
    ``failed_over``
        Requests answered by a replica other than their ring owner.
    ``failed``
        Requests for which every candidate replica failed (the client
        saw 502/503).
    ``ejected`` / ``readmitted``
        Ring membership flips, from health probes or live failures.
    ``stream_broken``
        Relayed SSE streams whose upstream replica disconnected before
        a terminal event (the client got a synthesized ``error`` frame).
    ``deadline_exhausted``
        Requests answered 504 because their deadline budget ran out
        before any replica produced an answer.
    ``breaker_opened`` / ``breaker_closed``
        Per-replica circuit-breaker transitions, summed over replicas.
    """

    def __init__(self) -> None:
        self.requests = 0
        self.schedule_requests = 0
        self.routed = 0
        self.coalesced = 0
        self.retried = 0
        self.failed_over = 0
        self.failed = 0
        self.errors = 0
        self.ejected = 0
        self.readmitted = 0
        self.stream_broken = 0
        self.deadline_exhausted = 0
        self.breaker_opened = 0
        self.breaker_closed = 0
        self.in_flight = 0
        self.per_replica: Dict[str, Dict[str, int]] = {}
        self._latencies: deque = deque(maxlen=LATENCY_WINDOW)

    def observe_latency(self, seconds: float) -> None:
        self._latencies.append(seconds)

    def replica_entry(self, name: str) -> Dict[str, int]:
        entry = self.per_replica.get(name)
        if entry is None:
            entry = {"routed": 0, "failures": 0}
            self.per_replica[name] = entry
        return entry

    def record_routed(self, name: str) -> None:
        self.routed += 1
        self.replica_entry(name)["routed"] += 1

    def record_failure(self, name: str) -> None:
        self.replica_entry(name)["failures"] += 1

    def snapshot(self) -> Dict[str, Any]:
        """The router section of ``/metrics`` (JSON-safe dict)."""
        window = list(self._latencies)
        return {
            "requests": self.requests,
            "schedule_requests": self.schedule_requests,
            "routed": self.routed,
            "coalesced": self.coalesced,
            "retried": self.retried,
            "failed_over": self.failed_over,
            "failed": self.failed,
            "errors": self.errors,
            "ejected": self.ejected,
            "readmitted": self.readmitted,
            "stream_broken": self.stream_broken,
            "deadline_exhausted": self.deadline_exhausted,
            "breaker_opened": self.breaker_opened,
            "breaker_closed": self.breaker_closed,
            "in_flight": self.in_flight,
            "latency_p50_ms": percentile(window, 0.50) * 1000.0,
            "latency_p95_ms": percentile(window, 0.95) * 1000.0,
            "latency_samples": len(window),
            "per_replica": {
                name: dict(entry)
                for name, entry in sorted(self.per_replica.items())
            },
        }
