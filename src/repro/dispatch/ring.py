"""A consistent-hash ring over replica addresses.

The dispatcher routes every ``/schedule`` request by its engine cache
key (see :mod:`repro.engine.keys`).  Consistent hashing is what makes
that routing *sticky under membership change*: each replica owns the
arc of the key space between its virtual nodes and the next ones
clockwise, so ejecting one replica of N reassigns only ~1/N of the
keys — every other replica's sharded result store stays hot.

Positions are sha256-derived and deterministic: two routers configured
with the same members and ``vnodes`` route identically, which is what
lets routers be replicated themselves.  The same determinism connects
the routing tier to the cluster store tier: a replica's peers-only
ring walks its keys in the router's failover order minus itself, so
publishing to the first ring successor seeds exactly the replica a
failover would land on.

>>> ring = HashRing(["10.0.0.1:8791", "10.0.0.2:8791",
...                  "10.0.0.3:8791"], vnodes=8)
>>> walk = ring.preference("a" * 64)
>>> walk[0] == ring.route("a" * 64)
True
>>> sorted(walk) == list(ring.members)
True

Removing a member never reorders the survivors — the failover walk is
the old walk with the dead member deleted:

>>> ring.remove(walk[0])
>>> ring.preference("a" * 64) == walk[1:]
True
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

#: Virtual nodes per member.  More vnodes smooth the key distribution
#: (the std-dev of arc ownership shrinks ~1/sqrt(vnodes)) at the cost
#: of a longer sorted position array; 64 keeps a 3-replica ring within
#: a few percent of uniform.
DEFAULT_VNODES = 64


def _position(label: str) -> int:
    """A point on the ring: the first 8 bytes of sha256(label)."""
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Deterministic consistent-hash ring with virtual nodes."""

    def __init__(
        self,
        members: Iterable[str] = (),
        vnodes: int = DEFAULT_VNODES,
    ):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._members: Dict[str, Tuple[int, ...]] = {}
        # Sorted (position, member) pairs; rebuilt on membership change
        # (members are few, requests are many — lookups stay O(log n)).
        self._points: List[Tuple[int, str]] = []
        for member in members:
            self.add(member)

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member: str) -> bool:
        return member in self._members

    @property
    def members(self) -> Tuple[str, ...]:
        return tuple(sorted(self._members))

    def add(self, member: str) -> None:
        """Add ``member`` (idempotent)."""
        if member in self._members:
            return
        positions = tuple(
            _position(f"{member}#{index}") for index in range(self.vnodes)
        )
        self._members[member] = positions
        for position in positions:
            bisect.insort(self._points, (position, member))

    def remove(self, member: str) -> None:
        """Remove ``member`` (idempotent)."""
        if member not in self._members:
            return
        del self._members[member]
        self._points = [
            point for point in self._points if point[1] != member
        ]

    # ------------------------------------------------------------------

    def preference(
        self, key: str, limit: Optional[int] = None
    ) -> List[str]:
        """Distinct members in ring order starting at ``key``'s point.

        The first entry is the key's owner; the rest are the failover
        sequence — the same walk every router performs, so retries land
        deterministically too.  ``limit`` caps the list length.
        """
        if not self._points:
            return []
        if limit is None:
            limit = len(self._members)
        start = bisect.bisect_left(self._points, (_position(key), ""))
        ordered: List[str] = []
        seen = set()
        for offset in range(len(self._points)):
            _, member = self._points[
                (start + offset) % len(self._points)
            ]
            if member in seen:
                continue
            seen.add(member)
            ordered.append(member)
            if len(ordered) >= limit:
                break
        return ordered

    def route(self, key: str) -> Optional[str]:
        """The key's owning member (None on an empty ring)."""
        owners = self.preference(key, limit=1)
        return owners[0] if owners else None
