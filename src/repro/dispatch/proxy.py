"""A minimal asyncio HTTP/1.1 client for router→replica exchanges.

One connection per exchange, ``Connection: close``, no chunked
encoding — the replicas are our own :mod:`repro.serve` processes, which
always answer with a ``Content-Length``.  The response body is returned
as raw bytes and relayed to the client untouched, which is how the
dispatcher preserves the serving layer's byte-determinism contract.

Failures callers must handle:

``OSError``
    Nothing listening (connection refused), reset mid-exchange, or any
    other transport failure.
``asyncio.TimeoutError``
    The exchange as a whole exceeded ``timeout``.
``ProxyProtocolError``
    The replica answered something that is not parseable HTTP/1.1.
"""

from __future__ import annotations

import asyncio
from typing import AsyncIterator, Dict, Optional, Tuple

#: Bound on a replica's response head, mirroring the server's own cap.
MAX_RESPONSE_HEAD = 64 * 1024

#: Bound on a replica's response body (matches the request-body cap —
#: responses carry at most one artifact per request).
MAX_RESPONSE_BODY = 32 * 1024 * 1024


class ProxyProtocolError(Exception):
    """The replica answered bytes that do not parse as HTTP/1.1."""


Exchange = Tuple[int, Dict[str, str], bytes]

#: ``open_stream``'s answer: status, headers, pre-read body (for
#: Content-Length responses), live chunk iterator (for close-delimited
#: streams) — exactly one of the last two is meaningful.
StreamOpen = Tuple[
    int, Dict[str, str], bytes, Optional[AsyncIterator[bytes]]
]


def _parse_head(head: bytes) -> Tuple[int, Dict[str, str]]:
    """Parse a response head into (status, lowercase headers)."""
    if len(head) > MAX_RESPONSE_HEAD:
        raise ProxyProtocolError("response head too large")
    head_lines = head.decode("latin-1").split("\r\n")
    status_parts = head_lines[0].split(None, 2)
    if len(status_parts) < 2 or not status_parts[0].startswith("HTTP/1."):
        raise ProxyProtocolError(
            f"malformed status line: {head_lines[0]!r}"
        )
    try:
        status = int(status_parts[1])
    except ValueError:
        raise ProxyProtocolError(
            f"malformed status code: {status_parts[1]!r}"
        )
    headers: Dict[str, str] = {}
    for line in head_lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if sep:
            headers[name.strip().lower()] = value.strip()
    return status, headers


async def exchange(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes = b"",
    headers: Optional[Dict[str, str]] = None,
    timeout: float = 60.0,
) -> Exchange:
    """One request/response against ``host:port``.

    Returns ``(status, lowercase headers, body bytes)``.
    """
    return await asyncio.wait_for(
        _exchange(host, port, method, path, body, headers),
        timeout=timeout,
    )


async def _exchange(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes,
    headers: Optional[Dict[str, str]],
) -> Exchange:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {host}:{port}",
            "Connection: close",
            f"Content-Length: {len(body)}",
        ]
        if body:
            lines.append("Content-Type: application/json")
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(
            "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n" + body
        )
        await writer.drain()

        head = await reader.readuntil(b"\r\n\r\n")
        status, response_headers = _parse_head(head)
        length_text = response_headers.get("content-length")
        if length_text is None:
            # Our servers always set Content-Length; read to EOF as a
            # fallback so a close-delimited body still round-trips.
            # (One read() returns on the first buffered chunk — loop
            # until the peer closes or the body exceeds its bound.)
            chunks = []
            received = 0
            while received <= MAX_RESPONSE_BODY:
                chunk = await reader.read(64 * 1024)
                if not chunk:
                    break
                chunks.append(chunk)
                received += len(chunk)
            payload = b"".join(chunks)
        else:
            try:
                length = int(length_text)
                if length < 0:
                    raise ValueError
            except ValueError:
                raise ProxyProtocolError(
                    f"bad Content-Length: {length_text!r}"
                )
            if length > MAX_RESPONSE_BODY:
                raise ProxyProtocolError("response body too large")
            payload = (
                await reader.readexactly(length) if length else b""
            )
        if len(payload) > MAX_RESPONSE_BODY:
            raise ProxyProtocolError("response body too large")
        return status, response_headers, payload
    except asyncio.IncompleteReadError as exc:
        raise ConnectionError(
            f"replica {host}:{port} closed mid-response"
        ) from exc
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError, RuntimeError):
            pass


async def open_stream(
    host: str,
    port: int,
    path: str,
    headers: Optional[Dict[str, str]] = None,
    timeout: float = 60.0,
) -> StreamOpen:
    """One GET exchange whose response body may be a live stream.

    Returns ``(status, lowercase headers, body, chunks)``.  A response
    carrying ``Content-Length`` (errors, every non-stream endpoint) is
    read in full: ``body`` holds it and ``chunks`` is None.  A
    close-delimited response — the replicas' SSE streams — hands back
    ``chunks``, an async generator yielding raw body bytes until the
    replica closes; iterating it to the end or calling ``aclose()``
    releases the connection either way.

    ``timeout`` bounds the connect, request write, response head, and
    any Content-Length body — *not* the streaming tail, which lives as
    long as the run it relays.
    """

    async def _open():
        reader, writer = await asyncio.open_connection(host, port)
        try:
            lines = [
                f"GET {path} HTTP/1.1",
                f"Host: {host}:{port}",
                "Connection: close",
                "Content-Length: 0",
            ]
            for name, value in (headers or {}).items():
                lines.append(f"{name}: {value}")
            writer.write(
                "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
            )
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
        except BaseException:
            writer.close()
            raise
        return reader, writer, head

    try:
        reader, writer, head = await asyncio.wait_for(
            _open(), timeout=timeout
        )
    except asyncio.IncompleteReadError as exc:
        raise ConnectionError(
            f"replica {host}:{port} closed mid-response"
        ) from exc
    try:
        status, response_headers = _parse_head(head)
        length_text = response_headers.get("content-length")
        if length_text is not None:
            try:
                length = int(length_text)
                if length < 0:
                    raise ValueError
            except ValueError:
                raise ProxyProtocolError(
                    f"bad Content-Length: {length_text!r}"
                )
            if length > MAX_RESPONSE_BODY:
                raise ProxyProtocolError("response body too large")
            payload = await asyncio.wait_for(
                reader.readexactly(length), timeout=timeout
            ) if length else b""
            writer.close()
            return status, response_headers, payload, None
    except asyncio.IncompleteReadError as exc:
        writer.close()
        raise ConnectionError(
            f"replica {host}:{port} closed mid-response"
        ) from exc
    except BaseException:
        writer.close()
        raise

    async def chunks() -> AsyncIterator[bytes]:
        try:
            while True:
                chunk = await reader.read(64 * 1024)
                if not chunk:
                    return
                yield chunk
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, RuntimeError):
                pass

    return status, response_headers, b"", chunks()
