"""A minimal asyncio HTTP/1.1 client for router→replica exchanges.

One connection per exchange, ``Connection: close``, no chunked
encoding — the replicas are our own :mod:`repro.serve` processes, which
always answer with a ``Content-Length``.  The response body is returned
as raw bytes and relayed to the client untouched, which is how the
dispatcher preserves the serving layer's byte-determinism contract.

Failures callers must handle:

``OSError``
    Nothing listening (connection refused), reset mid-exchange, or any
    other transport failure.
``asyncio.TimeoutError``
    The exchange as a whole exceeded ``timeout``.
``ProxyProtocolError``
    The replica answered something that is not parseable HTTP/1.1.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Tuple

#: Bound on a replica's response head, mirroring the server's own cap.
MAX_RESPONSE_HEAD = 64 * 1024

#: Bound on a replica's response body (matches the request-body cap —
#: responses carry at most one artifact per request).
MAX_RESPONSE_BODY = 32 * 1024 * 1024


class ProxyProtocolError(Exception):
    """The replica answered bytes that do not parse as HTTP/1.1."""


Exchange = Tuple[int, Dict[str, str], bytes]


async def exchange(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes = b"",
    headers: Optional[Dict[str, str]] = None,
    timeout: float = 60.0,
) -> Exchange:
    """One request/response against ``host:port``.

    Returns ``(status, lowercase headers, body bytes)``.
    """
    return await asyncio.wait_for(
        _exchange(host, port, method, path, body, headers),
        timeout=timeout,
    )


async def _exchange(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes,
    headers: Optional[Dict[str, str]],
) -> Exchange:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {host}:{port}",
            "Connection: close",
            f"Content-Length: {len(body)}",
        ]
        if body:
            lines.append("Content-Type: application/json")
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(
            "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n" + body
        )
        await writer.drain()

        head = await reader.readuntil(b"\r\n\r\n")
        if len(head) > MAX_RESPONSE_HEAD:
            raise ProxyProtocolError("response head too large")
        head_lines = head.decode("latin-1").split("\r\n")
        status_parts = head_lines[0].split(None, 2)
        if len(status_parts) < 2 or not status_parts[0].startswith(
            "HTTP/1."
        ):
            raise ProxyProtocolError(
                f"malformed status line: {head_lines[0]!r}"
            )
        try:
            status = int(status_parts[1])
        except ValueError:
            raise ProxyProtocolError(
                f"malformed status code: {status_parts[1]!r}"
            )
        response_headers: Dict[str, str] = {}
        for line in head_lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if sep:
                response_headers[name.strip().lower()] = value.strip()
        length_text = response_headers.get("content-length")
        if length_text is None:
            # Our servers always set Content-Length; read to EOF as a
            # fallback so a close-delimited body still round-trips.
            # (One read() returns on the first buffered chunk — loop
            # until the peer closes or the body exceeds its bound.)
            chunks = []
            received = 0
            while received <= MAX_RESPONSE_BODY:
                chunk = await reader.read(64 * 1024)
                if not chunk:
                    break
                chunks.append(chunk)
                received += len(chunk)
            payload = b"".join(chunks)
        else:
            try:
                length = int(length_text)
                if length < 0:
                    raise ValueError
            except ValueError:
                raise ProxyProtocolError(
                    f"bad Content-Length: {length_text!r}"
                )
            if length > MAX_RESPONSE_BODY:
                raise ProxyProtocolError("response body too large")
            payload = (
                await reader.readexactly(length) if length else b""
            )
        if len(payload) > MAX_RESPONSE_BODY:
            raise ProxyProtocolError("response body too large")
        return status, response_headers, payload
    except asyncio.IncompleteReadError as exc:
        raise ConnectionError(
            f"replica {host}:{port} closed mid-response"
        ) from exc
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionError, OSError, RuntimeError):
            pass
