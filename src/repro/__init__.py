"""repro: a reproduction of "Soft Scheduling in High Level Synthesis".

Zhu & Gajski (DAC 1999) propose *soft scheduling*: an online scheduler
whose state is a partial order (a K-threaded precedence graph) instead
of a fixed operation-to-step mapping, so later design phases — register
spilling, interconnect delay, engineering changes — refine the schedule
instead of invalidating it.

Quickstart::

    from repro import hal, ResourceSet, threaded_schedule

    schedule = threaded_schedule(hal(), ResourceSet.parse("2+/-,2*"))
    print(schedule.length)   # 8 control steps, matching the paper
    print(schedule.table())

Package map (details in DESIGN.md):

=====================  =============================================
``repro.ir``           dataflow graphs, analyses, behavioral frontend
``repro.graphs``       benchmark graphs (HAL, AR, EF, FIR, ...)
``repro.scheduling``   hard baselines: list, ASAP/ALAP, FDS, exact
``repro.core``         threaded (soft) scheduling — the contribution
``repro.allocation``   lifetimes, left-edge registers, spills, binding
``repro.physical``     floorplan + wire-delay model + back-annotation
``repro.rtl``          FSM controller, datapath netlist, Verilog
``repro.flows``        hard flow vs soft flow, comparison reports
``repro.experiments``  harnesses regenerating every figure/table
=====================  =============================================
"""

from repro.ir.dfg import DataFlowGraph, Edge, Node
from repro.ir.ops import DelayModel, OpKind
from repro.ir.builder import GraphBuilder
from repro.ir.parser import parse_program
from repro.ir.lowering import lower_program
from repro.graphs import (
    ar_filter,
    dct8,
    elliptic_wave_filter,
    fir,
    get_graph,
    hal,
    list_graphs,
    paper_fig1,
    random_layered_dag,
)
from repro.scheduling import (
    ListPriority,
    ResourceSet,
    Schedule,
    alap_schedule,
    asap_schedule,
    exact_schedule,
    force_directed_schedule,
    list_schedule,
    validate_schedule,
)
from repro.core import (
    NaiveSoftScheduler,
    ThreadedGraph,
    ThreadedScheduler,
    ThreadSpec,
    harden,
    insert_spill,
    insert_wire_delay,
    threaded_schedule,
)

__version__ = "1.1.0"

__all__ = [
    "DataFlowGraph",
    "Node",
    "Edge",
    "OpKind",
    "DelayModel",
    "GraphBuilder",
    "parse_program",
    "lower_program",
    "hal",
    "fir",
    "ar_filter",
    "elliptic_wave_filter",
    "dct8",
    "paper_fig1",
    "random_layered_dag",
    "get_graph",
    "list_graphs",
    "ResourceSet",
    "Schedule",
    "ListPriority",
    "list_schedule",
    "asap_schedule",
    "alap_schedule",
    "force_directed_schedule",
    "exact_schedule",
    "validate_schedule",
    "ThreadedGraph",
    "ThreadedScheduler",
    "ThreadSpec",
    "threaded_schedule",
    "harden",
    "NaiveSoftScheduler",
    "insert_spill",
    "insert_wire_delay",
    "__version__",
]
