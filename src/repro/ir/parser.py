"""Recursive-descent parser for the behavioral frontend.

Grammar (one basic block of straight-line code)::

    program    := statement*
    statement  := NAME '=' expr (';' | NEWLINE)
    expr       := comparison
    comparison := bitor (('<'|'<='|'>'|'>='|'=='|'!=') bitor)?
    bitor      := bitxor ('|' bitxor)*
    bitxor     := bitand ('^' bitand)*
    bitand     := shift ('&' shift)*
    shift      := additive (('<<'|'>>') additive)*
    additive   := term (('+'|'-') term)*
    term       := unary (('*'|'/') unary)*
    unary      := ('-'|'~') unary | atom
    atom       := NAME | NUMBER | '(' expr ')'

Comments start with ``#`` and run to end of line.
"""

from __future__ import annotations

import re
from typing import List, NamedTuple, Optional

from repro.errors import ParseError
from repro.ir.expr import Assign, BinOp, Expr, Name, Number, Program, UnaryOp


class Token(NamedTuple):
    kind: str
    text: str
    line: int
    column: int


_TOKEN_RE = re.compile(
    r"""
    (?P<comment>\#[^\n]*)
  | (?P<newline>\n)
  | (?P<ws>[ \t\r]+)
  | (?P<number>\d+)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><<|>>|<=|>=|==|!=|[-+*/<>=&|^~();])
    """,
    re.VERBOSE,
)

_STATEMENT_END = {"newline", "semicolon"}


def tokenize(source: str) -> List[Token]:
    """Split ``source`` into tokens; raises :class:`ParseError` on junk."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    pos = 0
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            column = pos - line_start + 1
            raise ParseError(
                f"unexpected character {source[pos]!r}", line=line, column=column
            )
        kind = match.lastgroup
        text = match.group()
        column = pos - line_start + 1
        if kind == "newline":
            tokens.append(Token("newline", text, line, column))
            line += 1
            line_start = match.end()
        elif kind == "op":
            name = "semicolon" if text == ";" else "op"
            tokens.append(Token(name, text, line, column))
        elif kind in ("name", "number"):
            tokens.append(Token(kind, text, line, column))
        # comments and whitespace are skipped
        pos = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    def _peek(self) -> Optional[Token]:
        if self._pos < len(self._tokens):
            return self._tokens[self._pos]
        return None

    def _advance(self) -> Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._pos += 1
        return token

    def _expect_op(self, text: str) -> Token:
        token = self._peek()
        if token is None or token.kind != "op" or token.text != text:
            found = token.text if token else "end of input"
            line = token.line if token else None
            raise ParseError(f"expected {text!r}, found {found!r}", line=line)
        return self._advance()

    def _skip_separators(self) -> None:
        while True:
            token = self._peek()
            if token is not None and token.kind in _STATEMENT_END:
                self._advance()
            else:
                return

    def parse_program(self) -> Program:
        statements: List[Assign] = []
        self._skip_separators()
        while self._peek() is not None:
            statements.append(self._parse_statement())
            self._skip_separators()
        return Program.of(statements)

    def _parse_statement(self) -> Assign:
        token = self._peek()
        if token is None or token.kind != "name":
            found = token.text if token else "end of input"
            line = token.line if token else None
            raise ParseError(
                f"expected an assignment target, found {found!r}", line=line
            )
        target = self._advance().text
        self._expect_op("=")
        expr = self._parse_expr()
        end = self._peek()
        if end is not None and end.kind not in _STATEMENT_END:
            raise ParseError(
                f"expected end of statement, found {end.text!r}", line=end.line
            )
        return Assign(target=target, expr=expr)

    # Precedence-climbing levels. ---------------------------------------

    def _binary_level(self, operators, next_level) -> Expr:
        expr = next_level()
        while True:
            token = self._peek()
            if token is None or token.kind != "op" or token.text not in operators:
                return expr
            op = self._advance().text
            rhs = next_level()
            expr = BinOp(op=op, lhs=expr, rhs=rhs)

    def _parse_expr(self) -> Expr:
        return self._parse_comparison()

    def _parse_comparison(self) -> Expr:
        expr = self._binary_level({"|"}, self._parse_bitxor)
        token = self._peek()
        comparisons = {"<", "<=", ">", ">=", "==", "!="}
        if token is not None and token.kind == "op" and token.text in comparisons:
            op = self._advance().text
            rhs = self._binary_level({"|"}, self._parse_bitxor)
            return BinOp(op=op, lhs=expr, rhs=rhs)
        return expr

    def _parse_bitxor(self) -> Expr:
        return self._binary_level({"^"}, self._parse_bitand)

    def _parse_bitand(self) -> Expr:
        return self._binary_level({"&"}, self._parse_shift)

    def _parse_shift(self) -> Expr:
        return self._binary_level({"<<", ">>"}, self._parse_additive)

    def _parse_additive(self) -> Expr:
        return self._binary_level({"+", "-"}, self._parse_term)

    def _parse_term(self) -> Expr:
        return self._binary_level({"*", "/"}, self._parse_unary)

    def _parse_unary(self) -> Expr:
        token = self._peek()
        if token is not None and token.kind == "op" and token.text in ("-", "~"):
            op = self._advance().text
            return UnaryOp(op=op, operand=self._parse_unary())
        return self._parse_atom()

    def _parse_atom(self) -> Expr:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input in expression")
        if token.kind == "name":
            return Name(self._advance().text)
        if token.kind == "number":
            return Number(int(self._advance().text))
        if token.kind == "op" and token.text == "(":
            self._advance()
            expr = self._parse_expr()
            self._expect_op(")")
            return expr
        raise ParseError(
            f"unexpected token {token.text!r} in expression", line=token.line
        )


def parse_program(source: str) -> Program:
    """Parse straight-line behavioral code into a :class:`Program`."""
    return _Parser(tokenize(source)).parse_program()
