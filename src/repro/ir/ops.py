"""Operation vocabulary and delay models.

The paper's precedence graph (Definition 1) carries a delay function
``D_G : V_G -> I``.  In this library every node stores an :class:`OpKind`
and an integer delay; :class:`DelayModel` maps kinds to default delays so
benchmark graphs and the frontend agree on one timing model.

The *standard* delay model (multiplier ops take 2 control steps, ALU ops
take 1) is the one used throughout the 1990s HLS literature, including the
force-directed-scheduling paper whose benchmarks the evaluation reuses; it
reproduces the schedule lengths reported in the paper's Figure 3 (e.g. HAL
length 6 under abundant resources: the critical path *, *, -, - costs
2 + 2 + 1 + 1).
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Mapping, Optional


class OpKind(enum.Enum):
    """Kinds of operations that may appear in a dataflow graph."""

    # Arithmetic.
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    NEG = "neg"
    # Comparisons.
    LT = "lt"
    LE = "le"
    GT = "gt"
    GE = "ge"
    EQ = "eq"
    NE = "ne"
    # Bitwise / logic.
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    # Data movement.
    MOVE = "move"
    PHI = "phi"
    # Memory (spill code is built from these).
    LOAD = "load"
    STORE = "store"
    # Physical artifacts.
    WIRE = "wire"
    # Structural.
    CONST = "const"
    NOP = "nop"

    def __repr__(self):
        return f"OpKind.{self.name}"

    @property
    def symbol(self) -> str:
        """Short printable symbol, used by DOT export and reports."""
        return _SYMBOLS[self]

    @property
    def is_arithmetic(self) -> bool:
        return self in _ARITHMETIC

    @property
    def is_comparison(self) -> bool:
        return self in _COMPARISONS

    @property
    def is_logic(self) -> bool:
        return self in _LOGIC

    @property
    def is_memory(self) -> bool:
        return self in (OpKind.LOAD, OpKind.STORE)

    @property
    def is_commutative(self) -> bool:
        """True when operand order does not matter (affects binding only)."""
        return self in _COMMUTATIVE

    @property
    def is_structural(self) -> bool:
        """True for nodes that never occupy a functional unit.

        Wire-delay vertices model interconnect latency; constants and NOPs
        are placeholders produced by the frontend.  Structural nodes take
        part in precedence and distance computations but are not assigned
        to threads / functional units.
        """
        return self in (OpKind.WIRE, OpKind.CONST, OpKind.NOP)


_SYMBOLS: Dict[OpKind, str] = {
    OpKind.ADD: "+",
    OpKind.SUB: "-",
    OpKind.MUL: "*",
    OpKind.DIV: "/",
    OpKind.NEG: "neg",
    OpKind.LT: "<",
    OpKind.LE: "<=",
    OpKind.GT: ">",
    OpKind.GE: ">=",
    OpKind.EQ: "==",
    OpKind.NE: "!=",
    OpKind.AND: "&",
    OpKind.OR: "|",
    OpKind.XOR: "^",
    OpKind.NOT: "~",
    OpKind.SHL: "<<",
    OpKind.SHR: ">>",
    OpKind.MOVE: "mv",
    OpKind.PHI: "phi",
    OpKind.LOAD: "ld",
    OpKind.STORE: "st",
    OpKind.WIRE: "wd",
    OpKind.CONST: "c",
    OpKind.NOP: "nop",
}

_ARITHMETIC = frozenset(
    {OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.DIV, OpKind.NEG}
)
_COMPARISONS = frozenset(
    {OpKind.LT, OpKind.LE, OpKind.GT, OpKind.GE, OpKind.EQ, OpKind.NE}
)
_LOGIC = frozenset(
    {OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.NOT, OpKind.SHL, OpKind.SHR}
)
_COMMUTATIVE = frozenset(
    {
        OpKind.ADD,
        OpKind.MUL,
        OpKind.AND,
        OpKind.OR,
        OpKind.XOR,
        OpKind.EQ,
        OpKind.NE,
    }
)


class DelayModel:
    """Maps operation kinds to integer delays (in control steps).

    Instances are immutable mappings with a default.  Use
    :meth:`standard` for the literature-standard model or :meth:`unit`
    for unit delays.

    >>> DelayModel.standard()[OpKind.MUL]
    2
    >>> DelayModel.unit()[OpKind.MUL]
    1
    """

    __slots__ = ("_delays", "_default")

    def __init__(self, delays: Mapping[OpKind, int], default: int = 1):
        for kind, delay in delays.items():
            if not isinstance(kind, OpKind):
                raise TypeError(f"delay model keys must be OpKind, got {kind!r}")
            if delay < 0:
                raise ValueError(f"delay for {kind} must be >= 0, got {delay}")
        if default < 0:
            raise ValueError(f"default delay must be >= 0, got {default}")
        self._delays = dict(delays)
        self._default = default

    @classmethod
    def standard(cls) -> "DelayModel":
        """Multiplier/divider ops take 2 steps, everything else 1.

        Structural kinds (wire, const, nop) default to the values used by
        the paper's scenarios: a wire-delay vertex costs 1 step, constants
        and NOPs are free.
        """
        return cls(
            {
                OpKind.MUL: 2,
                OpKind.DIV: 2,
                OpKind.WIRE: 1,
                OpKind.CONST: 0,
                OpKind.NOP: 0,
            },
            default=1,
        )

    @classmethod
    def unit(cls) -> "DelayModel":
        """Every non-structural operation takes exactly 1 step."""
        return cls({OpKind.CONST: 0, OpKind.NOP: 0}, default=1)

    @classmethod
    def uniform(cls, delay: int) -> "DelayModel":
        """Every operation, structural or not, takes ``delay`` steps."""
        return cls({}, default=delay)

    def override(self, delays: Mapping[OpKind, int]) -> "DelayModel":
        """Return a new model with some kinds overridden."""
        merged = dict(self._delays)
        merged.update(delays)
        return DelayModel(merged, default=self._default)

    def __getitem__(self, kind: OpKind) -> int:
        return self._delays.get(kind, self._default)

    def get(self, kind: OpKind, default: Optional[int] = None) -> int:
        if default is None:
            return self[kind]
        return self._delays.get(kind, default)

    def delays_for(self, kinds: Iterable[OpKind]) -> Dict[OpKind, int]:
        return {kind: self[kind] for kind in kinds}

    def __eq__(self, other):
        if not isinstance(other, DelayModel):
            return NotImplemented
        return self._delays == other._delays and self._default == other._default

    def __hash__(self):
        return hash((frozenset(self._delays.items()), self._default))

    def __repr__(self):
        items = ", ".join(
            f"{kind.name}={delay}" for kind, delay in sorted(
                self._delays.items(), key=lambda item: item[0].name
            )
        )
        return f"DelayModel({{{items}}}, default={self._default})"
