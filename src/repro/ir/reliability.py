"""Reliability hardening: triple-modular redundancy on marked ops.

Reliability-centric HLS (Tosun et al.) trades area/latency for fault
coverage by selectively replicating operations and voting on their
results.  :func:`apply_reliability` is that transform at the IR level:
each marked operation is triplicated (the original plus two copies fed
by the same operands) and a voter node joins the three results; every
former consumer of the original reads the voter instead.

The voter is an :class:`~repro.ir.ops.OpKind.PHI` node — it occupies
an ALU (a real majority vote costs hardware) and the cycle simulator's
PHI semantics forward its first operand, so a hardened graph computes
exactly the values of the original (the integration tests pin this).
The transform runs *before* scheduling, inside the engine's job
executor, after the input op set is sampled — so the inserted replicas
and voters show up in the artifact's ``inserted`` list like any other
soft-scheduling insertion, and the artifact meta records what was
hardened.

Memory operations cannot be marked: a replicated STORE would own its
own memory cell and break the LOAD-reads-its-store dependence the
simulator (and spill semantics) rely on.  Structural ops never occupy
hardware, so duplicating them buys no fault coverage — also rejected.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

from repro.errors import SchedulingError
from repro.ir.dfg import DataFlowGraph
from repro.ir.ops import OpKind

#: Replicas added per marked op (TMR: original + 2 copies, 1 voter).
RELIABILITY_REPLICAS = 2

#: Suffixes of the nodes the transform inserts for a marked op ``v``.
REPLICA_SUFFIXES = ("__r1", "__r2")
VOTER_SUFFIX = "__vote"


def reliability_targets(dfg: DataFlowGraph, ops: Iterable[str]) -> List[str]:
    """Validate the marked op ids against ``dfg``; return them sorted.

    Raises :class:`SchedulingError` (a structured per-job failure, not
    a batch abort) on unknown ids, structural ops, memory ops, or ids
    that collide with the transform's reserved ``__r<i>``/``__vote``
    suffixes.
    """
    targets = sorted(set(str(op) for op in ops))
    if not targets:
        raise SchedulingError("reliability scenario marked no ops")
    for op in targets:
        if op not in dfg:
            raise SchedulingError(
                f"reliability scenario marks unknown op {op!r}"
            )
        kind = dfg.node(op).op
        if kind.is_structural:
            raise SchedulingError(
                f"reliability scenario cannot mark structural op "
                f"{op!r} ({kind.name}): it occupies no hardware"
            )
        if kind in (OpKind.LOAD, OpKind.STORE):
            raise SchedulingError(
                f"reliability scenario cannot mark memory op {op!r}: "
                f"replicated stores break load/store cell semantics"
            )
        for suffix in REPLICA_SUFFIXES + (VOTER_SUFFIX,):
            if f"{op}{suffix}" in dfg:
                raise SchedulingError(
                    f"reliability transform would collide with "
                    f"existing node {op}{suffix!r}"
                )
    return targets


def apply_reliability(
    dfg: DataFlowGraph, ops: Iterable[str]
) -> Dict[str, Any]:
    """Triplicate the marked ops in place; return the artifact meta.

    For each marked op ``v``: two replicas ``v__r1``/``v__r2`` are
    added with ``v``'s op kind, delay, and in-edges; a voter
    ``v__vote`` (PHI, ALU-class, reading ``v``, ``v__r1``, ``v__r2``
    on ports 0/1/2) takes over every out-edge of ``v`` with the
    original port and wire weight.  Marked ops are processed in sorted
    order, so the grown graph — and every schedule of it — is
    deterministic.

    Returns the JSON-safe meta recorded on the schedule artifact::

        {"mode": "reliability", "ops": [...], "replicas": 2,
         "voters": <count>}
    """
    targets = reliability_targets(dfg, ops)
    for op in targets:
        node = dfg.node(op)
        in_edges = [
            (e.src, e.port, e.weight) for e in dfg.in_edges(op)
        ]
        out_edges = [
            (e.dst, e.port, e.weight) for e in dfg.out_edges(op)
        ]
        replicas = [f"{op}{suffix}" for suffix in REPLICA_SUFFIXES]
        for replica in replicas:
            dfg.add_node(
                replica, node.op, delay=node.delay, name=node.name
            )
            for src, port, weight in in_edges:
                dfg.add_edge(src, replica, port=port, weight=weight)
        voter = f"{op}{VOTER_SUFFIX}"
        dfg.add_node(voter, OpKind.PHI, name=f"vote({op})")
        for dst, port, weight in out_edges:
            dfg.remove_edge(op, dst)
            dfg.add_edge(voter, dst, port=port, weight=weight)
        dfg.add_edge(op, voter, port=0)
        dfg.add_edge(replicas[0], voter, port=1)
        dfg.add_edge(replicas[1], voter, port=2)
    return {
        "mode": "reliability",
        "ops": targets,
        "replicas": RELIABILITY_REPLICAS,
        "voters": len(targets),
    }
