"""Fluent construction helper for dataflow graphs.

Benchmark graphs and tests build DFGs from many small operations; the
builder removes the id-management boilerplate:

>>> from repro.ir import GraphBuilder
>>> b = GraphBuilder("demo")
>>> p = b.mul("p")
>>> q = b.add("q", p)          # q consumes p's value on port 0
>>> g = b.graph()
>>> g.successors(p)
['q']
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.ir.dfg import DataFlowGraph
from repro.ir.ops import DelayModel, OpKind


class GraphBuilder:
    """Accumulates nodes and edges, producing a :class:`DataFlowGraph`.

    Operation helpers (:meth:`add`, :meth:`mul`, ...) take optional
    predecessor ids; each listed predecessor is wired to the next operand
    port.  Ids are explicit (benchmarks name nodes after the paper's
    figures) or auto-generated (``op<N>``).
    """

    def __init__(self, name: str = "", delay_model: Optional[DelayModel] = None):
        self._dfg = DataFlowGraph(name=name, delay_model=delay_model)
        self._counter = 0

    def graph(self) -> DataFlowGraph:
        """Return the graph built so far (shared, not copied)."""
        return self._dfg

    def _fresh_id(self) -> str:
        self._counter += 1
        return f"op{self._counter}"

    def node(
        self,
        op: OpKind,
        node_id: Optional[str] = None,
        *preds: str,
        delay: Optional[int] = None,
        name: Optional[str] = None,
    ) -> str:
        """Add a node of kind ``op`` fed by ``preds`` and return its id."""
        node_id = node_id or self._fresh_id()
        self._dfg.add_node(node_id, op, delay=delay, name=name)
        for port, pred in enumerate(preds):
            self._dfg.add_edge(pred, node_id, port=port)
        return node_id

    # Convenience wrappers for the common kinds. ------------------------

    def add(self, node_id: Optional[str] = None, *preds: str, **kw) -> str:
        return self.node(OpKind.ADD, node_id, *preds, **kw)

    def sub(self, node_id: Optional[str] = None, *preds: str, **kw) -> str:
        return self.node(OpKind.SUB, node_id, *preds, **kw)

    def mul(self, node_id: Optional[str] = None, *preds: str, **kw) -> str:
        return self.node(OpKind.MUL, node_id, *preds, **kw)

    def div(self, node_id: Optional[str] = None, *preds: str, **kw) -> str:
        return self.node(OpKind.DIV, node_id, *preds, **kw)

    def lt(self, node_id: Optional[str] = None, *preds: str, **kw) -> str:
        return self.node(OpKind.LT, node_id, *preds, **kw)

    def load(self, node_id: Optional[str] = None, *preds: str, **kw) -> str:
        return self.node(OpKind.LOAD, node_id, *preds, **kw)

    def store(self, node_id: Optional[str] = None, *preds: str, **kw) -> str:
        return self.node(OpKind.STORE, node_id, *preds, **kw)

    def move(self, node_id: Optional[str] = None, *preds: str, **kw) -> str:
        return self.node(OpKind.MOVE, node_id, *preds, **kw)

    def wire(self, node_id: Optional[str] = None, *preds: str, **kw) -> str:
        return self.node(OpKind.WIRE, node_id, *preds, **kw)

    # Wiring helpers. ----------------------------------------------------

    def edge(self, src: str, dst: str, port: Optional[int] = None, weight: int = 0):
        """Add an explicit edge (for fan-in beyond the constructor ports)."""
        self._dfg.add_edge(src, dst, port=port, weight=weight)
        return self

    def edges(self, pairs: Iterable[Sequence[str]]) -> "GraphBuilder":
        """Add many ``(src, dst)`` pairs at once."""
        for src, dst in pairs:
            self._dfg.add_edge(src, dst)
        return self

    def chain(self, node_ids: Sequence[str]) -> "GraphBuilder":
        """Add edges forming a path through ``node_ids`` in order."""
        for src, dst in zip(node_ids, node_ids[1:]):
            self._dfg.add_edge(src, dst)
        return self
