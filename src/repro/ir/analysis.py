"""Static analyses over precedence graphs.

Implements the distance vocabulary of the paper's Definition 1:

* the **source distance** ``||<-v||`` of a vertex is the sum of the delays
  of all vertices along the longest path from the primary inputs to ``v``
  *including v itself*;
* the **sink distance** ``||v->||`` is the symmetric quantity toward the
  primary outputs;
* the **distance** ``||<-v->||`` is the longest input-to-output path
  through ``v``; Lemma 5 of the paper gives
  ``||<-v->|| = D(v) + max_p ||<-p|| + max_q ||q->||``, which in inclusive
  terms is ``sdist(v) + tdist(v) - D(v)``;
* the **diameter** ``||G||`` is the maximum distance over all vertices —
  the critical-path length the threaded scheduler minimises online.

Edge weights (interconnect delay annotations) are honoured everywhere:
a path's length is the sum of its vertex delays plus its edge weights.

Also provided are the classic HLS control-step analyses (ASAP, ALAP,
mobility) used by the list and force-directed baselines.

All analyses run over the graph's compiled
:class:`~repro.ir.graph_view.GraphView` (CSR arrays + cached topo
order/distances), so repeated queries between mutations are served from
the snapshot instead of re-walking the dict-of-dicts graph.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set

from repro.errors import GraphError, UnknownNodeError
from repro.ir.dfg import DataFlowGraph


def source_distances(dfg: DataFlowGraph) -> Dict[str, int]:
    """``||<-v||`` for every vertex (inclusive of the vertex's own delay)."""
    view = dfg.view()
    sdist = view.source_distance_array()
    ids = view.ids
    return {ids[i]: sdist[i] for i in view.topo_indices()}


def sink_distances(dfg: DataFlowGraph) -> Dict[str, int]:
    """``||v->||`` for every vertex (inclusive of the vertex's own delay)."""
    view = dfg.view()
    tdist = view.sink_distance_array()
    ids = view.ids
    return {ids[i]: tdist[i] for i in reversed(view.topo_indices())}


def node_distances(dfg: DataFlowGraph) -> Dict[str, int]:
    """``||<-v->||`` for every vertex (longest through-path)."""
    view = dfg.view()
    sdist = view.source_distance_array()
    tdist = view.sink_distance_array()
    delays = view.delays
    return {
        node_id: sdist[i] + tdist[i] - delays[i]
        for i, node_id in enumerate(view.ids)
    }


def diameter(dfg: DataFlowGraph) -> int:
    """``||G||``: the critical-path length (0 for the empty graph)."""
    return dfg.view().diameter()


def critical_path(dfg: DataFlowGraph) -> List[str]:
    """One longest input-to-output path, as an ordered node list.

    Ties are broken deterministically by graph insertion order.
    """
    if dfg.num_nodes == 0:
        return []
    sdist = source_distances(dfg)
    tdist = sink_distances(dfg)
    distances = {
        n: sdist[n] + tdist[n] - dfg.delay(n) for n in dfg.nodes()
    }
    target = max(distances.values())
    # Start from the first source on a critical path and walk forward,
    # always stepping to a successor that keeps the total distance.
    start = next(
        n
        for n in dfg.nodes()
        if distances[n] == target and sdist[n] == dfg.delay(n)
    )
    path = [start]
    current = start
    while True:
        step = None
        for edge in dfg.out_edges(current):
            succ = edge.dst
            if (
                sdist[succ] == sdist[current] + edge.weight + dfg.delay(succ)
                and distances[succ] == target
            ):
                step = succ
                break
        if step is None:
            break
        path.append(step)
        current = step
    return path


def asap_times(dfg: DataFlowGraph) -> Dict[str, int]:
    """Earliest start step of each operation (unconstrained resources)."""
    view = dfg.view()
    sdist = view.source_distance_array()
    delays = view.delays
    return {
        node_id: sdist[i] - delays[i] for i, node_id in enumerate(view.ids)
    }


def alap_times(dfg: DataFlowGraph, latency: Optional[int] = None) -> Dict[str, int]:
    """Latest start steps such that the graph finishes within ``latency``.

    ``latency`` defaults to the diameter (the minimum feasible latency);
    a smaller value raises :class:`GraphError`.
    """
    view = dfg.view()
    span = view.diameter()
    if latency is None:
        latency = span
    elif latency < span:
        raise GraphError(
            f"latency {latency} is below the critical path length {span}"
        )
    tdist = view.sink_distance_array()
    return {
        node_id: latency - tdist[i] for i, node_id in enumerate(view.ids)
    }


def mobility(dfg: DataFlowGraph, latency: Optional[int] = None) -> Dict[str, int]:
    """ALAP minus ASAP start step per operation (0 = on a critical path)."""
    asap = asap_times(dfg)
    alap = alap_times(dfg, latency=latency)
    return {n: alap[n] - asap[n] for n in dfg.nodes()}


def ancestors(dfg: DataFlowGraph, node_id: str) -> Set[str]:
    """All strict predecessors of ``node_id`` under the partial order."""
    return set(dfg.reaching_to(node_id))


def descendants(dfg: DataFlowGraph, node_id: str) -> Set[str]:
    """All strict successors of ``node_id`` under the partial order."""
    return set(dfg.reachable_from(node_id))


def transitive_closure(dfg: DataFlowGraph) -> Dict[str, FrozenSet[str]]:
    """Map each vertex to the frozen set of its strict descendants.

    Computed in reverse topological order so each vertex unions its
    successors' closures exactly once — O(|V| * |E|) worst case but fast
    in practice on the sparse graphs HLS deals with.
    """
    closure: Dict[str, FrozenSet[str]] = {}
    for node_id in reversed(dfg.topological_order()):
        acc: Set[str] = set()
        for succ in dfg.successors(node_id):
            acc.add(succ)
            acc |= closure[succ]
        closure[node_id] = frozenset(acc)
    return closure


def precedes(
    closure: Dict[str, FrozenSet[str]], first: str, second: str
) -> bool:
    """``first < second`` under a precomputed transitive closure."""
    if first not in closure:
        raise UnknownNodeError(first)
    return second in closure[first]
