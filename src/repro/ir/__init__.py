"""Behavioral intermediate representation.

This package provides the *precedence graph* abstraction of the paper
(Definition 1) as :class:`~repro.ir.dfg.DataFlowGraph`, the operation
vocabulary (:class:`~repro.ir.ops.OpKind`, :class:`~repro.ir.ops.DelayModel`),
static analyses (ASAP/ALAP/mobility/longest paths), and a small behavioral
frontend (expression parser + lowering) so realistic inputs can be written
as text instead of hand-built graphs.
"""

from repro.ir.ops import OpKind, DelayModel
from repro.ir.dfg import DataFlowGraph, Node, Edge
from repro.ir.graph_view import GraphView
from repro.ir.builder import GraphBuilder
from repro.ir.analysis import (
    asap_times,
    alap_times,
    mobility,
    source_distances,
    sink_distances,
    node_distances,
    diameter,
    critical_path,
    ancestors,
    descendants,
    transitive_closure,
)
from repro.ir.expr import (
    Assign,
    BinOp,
    Expr,
    Name,
    Number,
    Program,
    UnaryOp,
)
from repro.ir.parser import parse_program
from repro.ir.lowering import lower_program
from repro.ir.dot import to_dot
from repro.ir.partition import Partition, partition_graph
from repro.ir.validate import validate_dfg

__all__ = [
    "OpKind",
    "DelayModel",
    "DataFlowGraph",
    "Node",
    "Edge",
    "GraphView",
    "GraphBuilder",
    "asap_times",
    "alap_times",
    "mobility",
    "source_distances",
    "sink_distances",
    "node_distances",
    "diameter",
    "critical_path",
    "ancestors",
    "descendants",
    "transitive_closure",
    "Program",
    "Assign",
    "Expr",
    "BinOp",
    "UnaryOp",
    "Name",
    "Number",
    "parse_program",
    "lower_program",
    "to_dot",
    "Partition",
    "partition_graph",
    "validate_dfg",
]
