"""The precedence graph of Definition 1.

A :class:`DataFlowGraph` is a directed acyclic graph ``G = <V, E, D>``
whose vertices are operations (each with an :class:`~repro.ir.ops.OpKind`
and an integer delay) and whose edges are data/precedence dependences.
Edges optionally carry

* a ``port`` — which operand slot of the consumer the value feeds (used by
  datapath binding and by the frontend; ``None`` when irrelevant), and
* a ``weight`` — extra delay *on the edge*, used by the physical-design
  back-annotation path to model interconnect latency without inserting
  explicit wire vertices.

The class is deliberately self-contained (no networkx dependency): the
scheduling core needs deterministic iteration order and cheap mutation,
and tests cross-validate the analyses against networkx separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import (
    CycleError,
    DuplicateNodeError,
    GraphError,
    UnknownNodeError,
)
from repro.ir.ops import DelayModel, OpKind


@dataclass
class Node:
    """A single operation in a dataflow graph.

    In-place writes to ``op`` / ``delay`` notify the owning graph so its
    compiled :class:`~repro.ir.graph_view.GraphView` snapshot is rebuilt
    on next access (see :meth:`DataFlowGraph.view`).
    """

    id: str
    op: OpKind
    delay: int
    name: Optional[str] = None

    def __setattr__(self, name, value):
        object.__setattr__(self, name, value)
        if name in ("op", "delay"):
            owner = self.__dict__.get("_owner")
            if owner is not None:
                owner._bump()

    def label(self) -> str:
        """Human-readable label, e.g. ``"m1:*"``."""
        return f"{self.id}:{self.op.symbol}"

    def __repr__(self):
        return f"Node({self.id!r}, {self.op.name}, delay={self.delay})"


@dataclass
class Edge:
    """A directed dependence ``src -> dst``.

    In-place ``weight`` writes (the physical back-annotation path)
    notify the owning graph, like :class:`Node` attribute writes.
    """

    src: str
    dst: str
    port: Optional[int] = None
    weight: int = 0

    def __setattr__(self, name, value):
        object.__setattr__(self, name, value)
        if name == "weight":
            owner = self.__dict__.get("_owner")
            if owner is not None:
                owner._bump()

    def __repr__(self):
        extra = ""
        if self.port is not None:
            extra += f", port={self.port}"
        if self.weight:
            extra += f", weight={self.weight}"
        return f"Edge({self.src!r} -> {self.dst!r}{extra})"


class DataFlowGraph:
    """A mutable, deterministic DAG of operations.

    Iteration over nodes and edges always follows insertion order, so all
    algorithms built on top are reproducible.

    Parameters
    ----------
    name:
        Optional graph name (used in reports and DOT output).
    delay_model:
        Default delays for :meth:`add_node` calls that omit ``delay``.
        Defaults to :meth:`DelayModel.standard`.
    """

    def __init__(self, name: str = "", delay_model: Optional[DelayModel] = None):
        self.name = name
        self.delay_model = delay_model or DelayModel.standard()
        self._nodes: Dict[str, Node] = {}
        self._succs: Dict[str, Dict[str, Edge]] = {}
        self._preds: Dict[str, Dict[str, Edge]] = {}
        self._mutations = 0
        self._view = None

    # ------------------------------------------------------------------
    # Compiled view / cache invalidation.
    # ------------------------------------------------------------------

    def _bump(self) -> None:
        self._mutations += 1

    @property
    def mutation_count(self) -> int:
        """Monotonic mutation counter (snapshot tag for cached views)."""
        return self._mutations

    def touch(self) -> None:
        """Force cached views to rebuild on next access.

        Only needed after mutating graph structure through a back door
        the graph cannot observe; all :class:`DataFlowGraph` mutators
        and in-place ``Node.op`` / ``Node.delay`` / ``Edge.weight``
        writes already notify the cache.
        """
        self._bump()

    def view(self):
        """The compiled :class:`~repro.ir.graph_view.GraphView`.

        Built on first access and cached until the next mutation; all
        derived analyses (topological order, distances, ASAP/ALAP)
        share it, so repeated queries between mutations cost O(1)
        rebuild work.
        """
        from repro.ir.graph_view import GraphView

        view = self._view
        if view is None or view.version != self._mutations:
            view = GraphView(self)
            self._view = view
        return view

    # ------------------------------------------------------------------
    # Construction / mutation.
    # ------------------------------------------------------------------

    def add_node(
        self,
        node_id: str,
        op: OpKind,
        delay: Optional[int] = None,
        name: Optional[str] = None,
    ) -> Node:
        """Add an operation and return its :class:`Node`.

        ``delay`` defaults to the graph's delay model value for ``op``.
        """
        if not isinstance(node_id, str) or not node_id:
            raise GraphError(f"node id must be a non-empty string, got {node_id!r}")
        if node_id in self._nodes:
            raise DuplicateNodeError(node_id)
        if not isinstance(op, OpKind):
            raise GraphError(f"op must be an OpKind, got {op!r}")
        if delay is None:
            delay = self.delay_model[op]
        if delay < 0:
            raise GraphError(f"delay must be >= 0, got {delay}")
        node = Node(id=node_id, op=op, delay=delay, name=name)
        node.__dict__["_owner"] = self
        self._nodes[node_id] = node
        self._succs[node_id] = {}
        self._preds[node_id] = {}
        self._bump()
        return node

    def add_edge(
        self,
        src: str,
        dst: str,
        port: Optional[int] = None,
        weight: int = 0,
    ) -> Edge:
        """Add a dependence edge ``src -> dst``.

        Re-adding an existing edge updates its port/weight in place rather
        than raising, which keeps refinement code simple.
        """
        self._require(src)
        self._require(dst)
        if src == dst:
            raise GraphError(f"self-loop on {src!r} is not allowed")
        if weight < 0:
            raise GraphError(f"edge weight must be >= 0, got {weight}")
        existing = self._succs[src].get(dst)
        if existing is not None:
            existing.port = port
            existing.weight = weight
            return existing
        edge = Edge(src=src, dst=dst, port=port, weight=weight)
        edge.__dict__["_owner"] = self
        self._succs[src][dst] = edge
        self._preds[dst][src] = edge
        self._bump()
        return edge

    def remove_edge(self, src: str, dst: str) -> Edge:
        self._require(src)
        self._require(dst)
        try:
            edge = self._succs[src].pop(dst)
        except KeyError:
            raise GraphError(f"no edge {src!r} -> {dst!r}") from None
        del self._preds[dst][src]
        self._bump()
        return edge

    def remove_node(self, node_id: str) -> Node:
        """Remove a node and all incident edges."""
        node = self.node(node_id)
        for succ in list(self._succs[node_id]):
            self.remove_edge(node_id, succ)
        for pred in list(self._preds[node_id]):
            self.remove_edge(pred, node_id)
        del self._succs[node_id]
        del self._preds[node_id]
        del self._nodes[node_id]
        self._bump()
        return node

    def splice_on_edge(
        self,
        src: str,
        dst: str,
        node_id: str,
        op: OpKind,
        delay: Optional[int] = None,
        name: Optional[str] = None,
    ) -> Node:
        """Replace edge ``src -> dst`` with ``src -> new -> dst``.

        This is the graph-level primitive behind wire-delay insertion
        (paper Figure 1(d)): the new vertex inherits the consumer port of
        the replaced edge on its outgoing side.
        """
        edge = self.edge(src, dst)
        port, weight = edge.port, edge.weight
        self.remove_edge(src, dst)
        node = self.add_node(node_id, op, delay=delay, name=name)
        self.add_edge(src, node_id, weight=weight)
        self.add_edge(node_id, dst, port=port)
        return node

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def _require(self, node_id: str) -> None:
        if node_id not in self._nodes:
            raise UnknownNodeError(node_id)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[str]:
        return iter(self._nodes)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return sum(len(succs) for succs in self._succs.values())

    def node(self, node_id: str) -> Node:
        self._require(node_id)
        return self._nodes[node_id]

    def nodes(self) -> List[str]:
        return list(self._nodes)

    def node_objects(self) -> List[Node]:
        return list(self._nodes.values())

    def edge(self, src: str, dst: str) -> Edge:
        self._require(src)
        self._require(dst)
        try:
            return self._succs[src][dst]
        except KeyError:
            raise GraphError(f"no edge {src!r} -> {dst!r}") from None

    def has_edge(self, src: str, dst: str) -> bool:
        return src in self._succs and dst in self._succs[src]

    def edges(self) -> List[Edge]:
        return [edge for succs in self._succs.values() for edge in succs.values()]

    def successors(self, node_id: str) -> List[str]:
        self._require(node_id)
        return list(self._succs[node_id])

    def predecessors(self, node_id: str) -> List[str]:
        self._require(node_id)
        return list(self._preds[node_id])

    def out_edges(self, node_id: str) -> List[Edge]:
        self._require(node_id)
        return list(self._succs[node_id].values())

    def in_edges(self, node_id: str) -> List[Edge]:
        self._require(node_id)
        return list(self._preds[node_id].values())

    def in_degree(self, node_id: str) -> int:
        self._require(node_id)
        return len(self._preds[node_id])

    def out_degree(self, node_id: str) -> int:
        self._require(node_id)
        return len(self._succs[node_id])

    def sources(self) -> List[str]:
        """Primary inputs: vertices without predecessors."""
        return [n for n in self._nodes if not self._preds[n]]

    def sinks(self) -> List[str]:
        """Primary outputs: vertices without successors."""
        return [n for n in self._nodes if not self._succs[n]]

    def delay(self, node_id: str) -> int:
        return self.node(node_id).delay

    def total_delay(self) -> int:
        """Sum of all node delays (a lower bound for 1-FU schedules)."""
        return sum(node.delay for node in self._nodes.values())

    def op_histogram(self) -> Dict[OpKind, int]:
        histogram: Dict[OpKind, int] = {}
        for node in self._nodes.values():
            histogram[node.op] = histogram.get(node.op, 0) + 1
        return histogram

    # ------------------------------------------------------------------
    # Order / structure.
    # ------------------------------------------------------------------

    def topological_order(self) -> List[str]:
        """Kahn's algorithm with deterministic (insertion-order) tie-break.

        Served from the compiled :meth:`view` (cached between
        mutations).  Raises :class:`CycleError` if the graph has a
        cycle.
        """
        return self.view().topological_ids()

    def is_dag(self) -> bool:
        try:
            self.topological_order()
        except CycleError:
            return False
        return True

    def find_cycle(self) -> Optional[List[str]]:
        """Return one cycle as a node list, or ``None`` if acyclic."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {n: WHITE for n in self._nodes}
        parent: Dict[str, Optional[str]] = {}

        for root in self._nodes:
            if color[root] != WHITE:
                continue
            stack: List[Tuple[str, Iterator[str]]] = [
                (root, iter(self._succs[root]))
            ]
            color[root] = GRAY
            parent[root] = None
            while stack:
                node, it = stack[-1]
                advanced = False
                for succ in it:
                    if color[succ] == WHITE:
                        color[succ] = GRAY
                        parent[succ] = node
                        stack.append((succ, iter(self._succs[succ])))
                        advanced = True
                        break
                    if color[succ] == GRAY:
                        # Found a back edge: reconstruct the cycle.
                        cycle = [succ, node]
                        cursor = parent[node]
                        while cursor is not None and cursor != succ:
                            cycle.append(cursor)
                            cursor = parent[cursor]
                        cycle.reverse()
                        return cycle
                if not advanced:
                    color[node] = BLACK
                    stack.pop()
        return None

    def reachable_from(self, node_id: str) -> List[str]:
        """All vertices reachable from ``node_id`` (excluding itself)."""
        self._require(node_id)
        seen = {node_id}
        frontier = [node_id]
        order: List[str] = []
        while frontier:
            current = frontier.pop()
            for succ in self._succs[current]:
                if succ not in seen:
                    seen.add(succ)
                    order.append(succ)
                    frontier.append(succ)
        return order

    def reaching_to(self, node_id: str) -> List[str]:
        """All vertices from which ``node_id`` is reachable (excl. itself)."""
        self._require(node_id)
        seen = {node_id}
        frontier = [node_id]
        order: List[str] = []
        while frontier:
            current = frontier.pop()
            for pred in self._preds[current]:
                if pred not in seen:
                    seen.add(pred)
                    order.append(pred)
                    frontier.append(pred)
        return order

    # ------------------------------------------------------------------
    # Conversion / copying.
    # ------------------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "DataFlowGraph":
        clone = DataFlowGraph(
            name=self.name if name is None else name,
            delay_model=self.delay_model,
        )
        for node in self._nodes.values():
            clone.add_node(node.id, node.op, delay=node.delay, name=node.name)
        for edge in self.edges():
            clone.add_edge(edge.src, edge.dst, port=edge.port, weight=edge.weight)
        return clone

    def subgraph(self, node_ids: Iterable[str]) -> "DataFlowGraph":
        """Induced subgraph on ``node_ids`` (order preserved)."""
        keep = [n for n in self._nodes if n in set(node_ids)]
        sub = DataFlowGraph(name=f"{self.name}.sub", delay_model=self.delay_model)
        for node_id in keep:
            node = self._nodes[node_id]
            sub.add_node(node.id, node.op, delay=node.delay, name=node.name)
        keep_set = set(keep)
        for edge in self.edges():
            if edge.src in keep_set and edge.dst in keep_set:
                sub.add_edge(edge.src, edge.dst, port=edge.port, weight=edge.weight)
        return sub

    def to_networkx(self):
        """Export to a ``networkx.DiGraph`` (node/edge attrs preserved)."""
        import networkx as nx

        graph = nx.DiGraph(name=self.name)
        for node in self._nodes.values():
            graph.add_node(
                node.id, op=node.op, delay=node.delay, name=node.name
            )
        for edge in self.edges():
            graph.add_edge(edge.src, edge.dst, port=edge.port, weight=edge.weight)
        return graph

    @classmethod
    def from_networkx(cls, graph, name: str = "", delay_model=None):
        """Build from a ``networkx.DiGraph`` with ``op``/``delay`` attrs.

        Missing ``op`` defaults to :attr:`OpKind.NOP`; missing ``delay``
        falls back to the delay model.
        """
        dfg = cls(name=name or graph.name or "", delay_model=delay_model)
        for node_id, data in graph.nodes(data=True):
            dfg.add_node(
                str(node_id),
                data.get("op", OpKind.NOP),
                delay=data.get("delay"),
                name=data.get("name"),
            )
        for src, dst, data in graph.edges(data=True):
            dfg.add_edge(
                str(src),
                str(dst),
                port=data.get("port"),
                weight=data.get("weight", 0),
            )
        return dfg

    def __repr__(self):
        label = self.name or "dfg"
        return (
            f"DataFlowGraph({label!r}, nodes={self.num_nodes}, "
            f"edges={self.num_edges})"
        )
