"""JSON (de)serialization of graphs and schedules.

A downstream user needs to move workloads and results in and out of the
library; plain-dict JSON keeps that dependency-free and diffable.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

from repro.errors import GraphError
from repro.ir.dfg import DataFlowGraph
from repro.ir.ops import OpKind

_FORMAT = "repro-dfg-v1"
_SCHEDULE_FORMAT = "repro-schedule-v1"


def dfg_to_dict(dfg: DataFlowGraph) -> Dict[str, Any]:
    """Plain-dict form of a graph (stable key order)."""
    return {
        "format": _FORMAT,
        "name": dfg.name,
        "nodes": [
            {
                "id": node.id,
                "op": node.op.value,
                "delay": node.delay,
                **({"name": node.name} if node.name else {}),
            }
            for node in dfg.node_objects()
        ],
        "edges": [
            {
                "src": edge.src,
                "dst": edge.dst,
                **({"port": edge.port} if edge.port is not None else {}),
                **({"weight": edge.weight} if edge.weight else {}),
            }
            for edge in dfg.edges()
        ],
    }


def dfg_from_dict(data: Dict[str, Any]) -> DataFlowGraph:
    """Rebuild a graph from :func:`dfg_to_dict` output.

    Every malformed record — a non-dict document, a node or edge entry
    missing a required field, an unknown op kind — raises
    :class:`~repro.errors.GraphError` naming the offending record, so
    callers handling untrusted documents (the serving front end turning
    inline request graphs into 400 responses) never see a raw
    ``KeyError``/``ValueError`` traceback.
    """
    if not isinstance(data, dict):
        raise GraphError(
            f"not a {_FORMAT} document (expected an object, "
            f"got {type(data).__name__})"
        )
    if data.get("format") != _FORMAT:
        raise GraphError(
            f"not a {_FORMAT} document (format={data.get('format')!r})"
        )
    dfg = DataFlowGraph(name=data.get("name", ""))
    for position, node in enumerate(data.get("nodes", [])):
        if not isinstance(node, dict):
            raise GraphError(f"malformed node record #{position}: {node!r}")
        try:
            dfg.add_node(
                node["id"],
                OpKind(node["op"]),
                delay=node["delay"],
                name=node.get("name"),
            )
        except KeyError as exc:
            raise GraphError(
                f"node record #{position} is missing field {exc}"
            )
        except ValueError:
            raise GraphError(
                f"node record #{position} has unknown op kind "
                f"{node.get('op')!r}"
            )
        except TypeError as exc:
            # e.g. a non-numeric delay failing the `delay < 0` check.
            raise GraphError(
                f"node record #{position} has a bad field value: {exc}"
            )
    for position, edge in enumerate(data.get("edges", [])):
        if not isinstance(edge, dict):
            raise GraphError(f"malformed edge record #{position}: {edge!r}")
        try:
            dfg.add_edge(
                edge["src"],
                edge["dst"],
                port=edge.get("port"),
                weight=edge.get("weight", 0),
            )
        except KeyError as exc:
            raise GraphError(
                f"edge record #{position} is missing field {exc}"
            )
        except TypeError as exc:
            raise GraphError(
                f"edge record #{position} has a bad field value: {exc}"
            )
    return dfg


def dfg_canonical_dict(dfg: DataFlowGraph) -> Dict[str, Any]:
    """Insertion-order-independent dict form, for content hashing.

    Unlike :func:`dfg_to_dict` (which preserves insertion order for
    readable round trips), nodes are sorted by id and edges by
    ``(src, dst, port)`` so two graphs with the same structure hash the
    same regardless of construction order.  The graph *name* is
    deliberately excluded: it is provenance, not structure.
    """
    data = dfg_to_dict(dfg)
    return {
        "format": data["format"],
        "nodes": sorted(data["nodes"], key=lambda n: n["id"]),
        "edges": sorted(
            data["edges"],
            key=lambda e: (e["src"], e["dst"], e.get("port", -1)),
        ),
    }


def dfg_fingerprint(dfg: DataFlowGraph) -> str:
    """Stable content hash of a graph (hex sha256).

    The fingerprint is a pure function of the graph's structure (node
    ids, op kinds, delays, names; edge endpoints, ports, weights) — it
    does not depend on node/edge insertion order, the graph's name, or
    the process.  Used by the batch engine as the graph component of
    content-addressed result-cache keys.
    """
    canonical = json.dumps(
        dfg_canonical_dict(dfg), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def dumps_dfg(dfg: DataFlowGraph, indent: Optional[int] = 2) -> str:
    return json.dumps(dfg_to_dict(dfg), indent=indent)


def loads_dfg(text: str) -> DataFlowGraph:
    return dfg_from_dict(json.loads(text))


def schedule_to_dict(schedule) -> Dict[str, Any]:
    """Plain-dict form of a hard schedule (graph embedded)."""
    return {
        "format": _SCHEDULE_FORMAT,
        "algorithm": schedule.algorithm,
        "length": schedule.length,
        "graph": dfg_to_dict(schedule.dfg),
        "start_times": dict(schedule.start_times),
        "binding": {
            node_id: [fu_type.name, index]
            for node_id, (fu_type, index) in schedule.binding.items()
        },
        "resources": (
            schedule.resources.notation() if schedule.resources else None
        ),
    }


def schedule_from_dict(data: Dict[str, Any]):
    """Rebuild a Schedule from :func:`schedule_to_dict` output."""
    from repro.scheduling.base import Schedule
    from repro.scheduling.resources import FU_TYPES, ResourceSet

    if data.get("format") != _SCHEDULE_FORMAT:
        raise GraphError(
            f"not a {_SCHEDULE_FORMAT} document "
            f"(format={data.get('format')!r})"
        )
    dfg = dfg_from_dict(data["graph"])
    binding = {
        node_id: (FU_TYPES[type_name], index)
        for node_id, (type_name, index) in data.get("binding", {}).items()
    }
    resources = (
        ResourceSet.parse(data["resources"]) if data.get("resources") else None
    )
    return Schedule(
        dfg=dfg,
        start_times=dict(data["start_times"]),
        binding=binding,
        resources=resources,
        algorithm=data.get("algorithm", ""),
    )


def dumps_schedule(schedule, indent: Optional[int] = 2) -> str:
    return json.dumps(schedule_to_dict(schedule), indent=indent)


def loads_schedule(text: str):
    return schedule_from_dict(json.loads(text))
