"""Deterministic acyclic partitioning of dataflow graphs.

The hierarchical scheduling layer (``repro.hier``) cuts a huge DFG
into subgraphs that are scheduled as independent jobs and stitched
back together through boundary windows.  For that recipe to work the
partition must satisfy two structural guarantees:

* **Acyclic quotient graph** — collapsing each part to a single
  vertex must yield a DAG, so parts can be scheduled in wavefront
  order and boundary constraints only ever point forward.  We get
  this by construction: parts are bands of unit-depth topological
  levels, so every edge goes from a part to itself or a later part.
* **Determinism** — the same graph must partition identically in
  every process (cache keys of the subgraph jobs depend on it).  All
  work happens over :class:`~repro.ir.graph_view.GraphView` index
  arrays in CSR order; no hash-seed-dependent iteration is involved.

The cut is then improved by a bounded number of greedy refinement
passes that move single vertices between *adjacent* bands when doing
so removes more boundary edges than it creates, subject to balance
bounds and to the level-banding invariant (a vertex may only move
forward past vertices it does not feed, and backward past vertices
that do not feed it).

>>> from repro.ir import DataFlowGraph, OpKind
>>> dfg = DataFlowGraph("demo")
>>> prev = None
>>> for i in range(6):
...     _ = dfg.add_node(f"n{i}", OpKind.ADD, delay=1)
...     if prev is not None:
...         _ = dfg.add_edge(prev, f"n{i}")
...     prev = f"n{i}"
>>> p = partition_graph(dfg, num_parts=3)
>>> [len(part) for part in p.parts]
[2, 2, 2]
>>> all(e.src_part < e.dst_part for e in p.boundary)
True
>>> [g.num_nodes for g in p.subgraphs()]
[2, 2, 2]
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import GraphError
from repro.ir.dfg import DataFlowGraph

#: Default target operation count per part; ``partition_graph`` derives
#: ``num_parts`` from it when no explicit count is given.
DEFAULT_MAX_OPS = 200

#: Default number of greedy cut-refinement passes.
DEFAULT_REFINE_PASSES = 2


@dataclass(frozen=True)
class BoundaryEdge:
    """One dependence edge that crosses a part boundary."""

    src: str
    dst: str
    weight: int
    src_part: int
    dst_part: int


@dataclass(frozen=True)
class Partition:
    """The result of :func:`partition_graph`.

    ``parts[k]`` lists the node ids of part ``k`` in graph insertion
    order; ``part_of`` maps every node id to its part index; and
    ``boundary`` holds every cross-part edge.  Every boundary edge
    satisfies ``src_part < dst_part``, which is exactly the acyclic-
    quotient guarantee.
    """

    dfg: DataFlowGraph = field(repr=False)
    parts: Tuple[Tuple[str, ...], ...]
    part_of: Dict[str, int] = field(repr=False)
    boundary: Tuple[BoundaryEdge, ...] = field(repr=False)

    @property
    def num_parts(self) -> int:
        return len(self.parts)

    @property
    def cut_size(self) -> int:
        """Number of edges crossing part boundaries."""
        return len(self.boundary)

    def quotient_edges(self) -> List[Tuple[int, int]]:
        """Distinct ``(src_part, dst_part)`` pairs, sorted."""
        return sorted({(e.src_part, e.dst_part) for e in self.boundary})

    def quotient_depth(self) -> List[int]:
        """Longest-path depth of each part in the quotient DAG.

        Parts at the same depth have no dependence between them and
        can be scheduled concurrently in the seed wavefront.
        """
        depth = [0] * self.num_parts
        # Quotient edges always point to a strictly larger part index,
        # so ascending part order is a topological order.
        for src_part, dst_part in self.quotient_edges():
            depth[dst_part] = max(depth[dst_part], depth[src_part] + 1)
        return depth

    def subgraphs(self) -> List[DataFlowGraph]:
        """Induced subgraph per part, named ``<graph>.p<k>``."""
        base = self.dfg.name or "dfg"
        out = []
        for k, members in enumerate(self.parts):
            sub = self.dfg.subgraph(members)
            sub.name = f"{base}.p{k}"
            out.append(sub)
        return out

    def __repr__(self):
        return (
            f"Partition(parts={self.num_parts}, "
            f"cut={self.cut_size}, nodes={len(self.part_of)})"
        )


def partition_graph(
    dfg: DataFlowGraph,
    num_parts: Optional[int] = None,
    max_ops: int = DEFAULT_MAX_OPS,
    refine_passes: int = DEFAULT_REFINE_PASSES,
) -> Partition:
    """Partition ``dfg`` into ordered acyclic bands.

    ``num_parts`` overrides the ``max_ops``-derived part count.  The
    returned partition may have fewer parts than requested when the
    graph has fewer topological levels, or when one level holds far
    more than its share of the vertices.
    """
    view = dfg.view()
    n = view.num_nodes
    if n == 0:
        raise GraphError("cannot partition an empty graph")
    if num_parts is None:
        if max_ops < 1:
            raise GraphError(f"max_ops must be >= 1, got {max_ops}")
        num_parts = -(-n // max_ops)
    if num_parts < 1:
        raise GraphError(f"num_parts must be >= 1, got {num_parts}")

    topo = view.topo_indices()

    # Unit-depth levels: level(v) = 1 + max(level(pred)), 0 for sources.
    # Every edge strictly increases the level, so banding contiguous
    # level ranges can never produce a backward cross-band edge.
    level = [0] * n
    pred_off, pred_src = view.pred_off, view.pred_src
    for u in topo:
        best = 0
        for k in range(pred_off[u], pred_off[u + 1]):
            depth = level[pred_src[k]] + 1
            if depth > best:
                best = depth
        level[u] = best
    num_levels = max(level) + 1
    num_parts = min(num_parts, num_levels)

    # Band whole levels by cumulative vertex count: the band of a level
    # is the floor of its prefix share.  Monotone in the level, so bands
    # are contiguous level ranges; compressing skipped indices keeps
    # every part non-empty.
    counts = [0] * num_levels
    for u in range(n):
        counts[level[u]] += 1
    prefix = 0
    band_of_level = []
    for lv in range(num_levels):
        band_of_level.append(min(num_parts - 1, (prefix * num_parts) // n))
        prefix += counts[lv]
    remap: Dict[int, int] = {}
    for b in band_of_level:
        if b not in remap:
            remap[b] = len(remap)
    band_of_level = [remap[b] for b in band_of_level]
    k = len(remap)

    part = [band_of_level[level[u]] for u in range(n)]
    sizes = [0] * k
    for u in range(n):
        sizes[part[u]] += 1

    # Greedy min-cut refinement between adjacent bands.  A vertex may
    # move forward only when none of its successors would end up behind
    # it (and symmetrically backward), which preserves the invariant
    # part(src) <= part(dst) for every edge.  Balance bounds keep parts
    # within ~20% of the average and never empty.
    if k > 1 and refine_passes > 0:
        average = n // k
        min_size = max(1, (average * 4) // 5)
        max_size = (average * 6) // 5 + 1
        for _ in range(refine_passes):
            moved = False
            for u in range(n):
                b = part[u]
                succs = view.successors(u)
                preds = view.predecessors(u)
                if (
                    b + 1 < k
                    and sizes[b] - 1 >= min_size
                    and sizes[b + 1] + 1 <= max_size
                    and all(part[s] >= b + 1 for s, _ in succs)
                ):
                    gain = sum(1 for s, _ in succs if part[s] == b + 1)
                    gain -= sum(1 for p, _ in preds if part[p] == b)
                    if gain > 0:
                        part[u] = b + 1
                        sizes[b] -= 1
                        sizes[b + 1] += 1
                        moved = True
                        continue
                if (
                    b - 1 >= 0
                    and sizes[b] - 1 >= min_size
                    and sizes[b - 1] + 1 <= max_size
                    and all(part[p] <= b - 1 for p, _ in preds)
                ):
                    gain = sum(1 for p, _ in preds if part[p] == b - 1)
                    gain -= sum(1 for s, _ in succs if part[s] == b)
                    if gain > 0:
                        part[u] = b - 1
                        sizes[b] -= 1
                        sizes[b - 1] += 1
                        moved = True
            if not moved:
                break

    ids = view.ids
    members: List[List[str]] = [[] for _ in range(k)]
    for u in range(n):
        members[part[u]].append(ids[u])
    boundary: List[BoundaryEdge] = []
    succ_off, succ_dst, succ_w = view.succ_off, view.succ_dst, view.succ_w
    for u in range(n):
        for e in range(succ_off[u], succ_off[u + 1]):
            v = succ_dst[e]
            if part[u] != part[v]:
                boundary.append(
                    BoundaryEdge(ids[u], ids[v], succ_w[e], part[u], part[v])
                )
    return Partition(
        dfg=dfg,
        parts=tuple(tuple(m) for m in members),
        part_of={ids[u]: part[u] for u in range(n)},
        boundary=tuple(boundary),
    )
