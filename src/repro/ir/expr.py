"""Expression AST for the behavioral frontend.

The frontend accepts straight-line arithmetic code — the basic-block /
superblock granularity at which the paper's schedulers operate — e.g. the
HAL differential-equation body::

    x1 = x + dx
    u1 = u - (3 * x * u * dx) - (3 * y * dx)
    y1 = y + u * dx
    c  = x1 < a

An AST keeps the parser (:mod:`repro.ir.parser`) and the lowering pass
(:mod:`repro.ir.lowering`) independent and separately testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple, Union


class Expr:
    """Base class for expression nodes."""

    def children(self) -> Tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class Name(Expr):
    """A variable reference."""

    ident: str

    def __str__(self):
        return self.ident


@dataclass(frozen=True)
class Number(Expr):
    """An integer literal."""

    value: int

    def __str__(self):
        return str(self.value)


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation; ``op`` is the surface operator token."""

    op: str
    lhs: Expr
    rhs: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.lhs, self.rhs)

    def __str__(self):
        return f"({self.lhs} {self.op} {self.rhs})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """A unary operation (``-`` or ``~``)."""

    op: str
    operand: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self):
        return f"({self.op}{self.operand})"


@dataclass(frozen=True)
class Assign:
    """One statement: ``target = expr``."""

    target: str
    expr: Expr

    def __str__(self):
        return f"{self.target} = {self.expr}"


@dataclass(frozen=True)
class Program:
    """An ordered sequence of assignments (one basic block)."""

    statements: Tuple[Assign, ...]

    def __str__(self):
        return "\n".join(str(stmt) for stmt in self.statements)

    @classmethod
    def of(cls, statements: List[Assign]) -> "Program":
        return cls(tuple(statements))


def walk(expr: Expr):
    """Yield ``expr`` and all sub-expressions, depth first, pre-order."""
    yield expr
    for child in expr.children():
        yield from walk(child)


ExprLike = Union[Expr, int, str]


def as_expr(value: ExprLike) -> Expr:
    """Coerce ints to :class:`Number` and strings to :class:`Name`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, int):
        return Number(value)
    if isinstance(value, str):
        return Name(value)
    raise TypeError(f"cannot convert {value!r} to an expression")
