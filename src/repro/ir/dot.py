"""Graphviz DOT export for dataflow graphs and schedules.

Useful for eyeballing benchmark graphs and debugging schedules; the
output is plain text so it needs no graphviz installation to generate.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.ir.dfg import DataFlowGraph


def _quote(text: str) -> str:
    return '"' + text.replace('"', '\\"') + '"'


def to_dot(
    dfg: DataFlowGraph,
    start_times: Optional[Mapping[str, int]] = None,
    threads: Optional[Mapping[str, int]] = None,
) -> str:
    """Render ``dfg`` as DOT text.

    ``start_times`` (e.g. a hard schedule) groups nodes into ranked rows
    by control step; ``threads`` (a threaded schedule) colors nodes by
    thread index.
    """
    lines = [f"digraph {_quote(dfg.name or 'dfg')} {{"]
    lines.append("  rankdir=TB;")
    lines.append("  node [shape=circle, fontsize=10];")

    palette = [
        "lightblue",
        "lightsalmon",
        "palegreen",
        "plum",
        "khaki",
        "lightcyan",
        "mistyrose",
        "lavender",
    ]

    for node in dfg.node_objects():
        attrs = [f"label={_quote(node.id + chr(92) + 'n' + node.op.symbol)}"]
        if threads is not None and node.id in threads:
            color = palette[threads[node.id] % len(palette)]
            attrs.append("style=filled")
            attrs.append(f"fillcolor={color}")
        lines.append(f"  {_quote(node.id)} [{', '.join(attrs)}];")

    if start_times is not None:
        by_step: Dict[int, list] = {}
        for node_id, step in start_times.items():
            by_step.setdefault(step, []).append(node_id)
        for step in sorted(by_step):
            members = " ".join(_quote(n) for n in sorted(by_step[step]))
            lines.append(f"  {{ rank=same; {members} }}  // step {step}")

    for edge in dfg.edges():
        attrs = []
        if edge.weight:
            attrs.append(f"label={_quote(str(edge.weight))}")
        attr_text = f" [{', '.join(attrs)}]" if attrs else ""
        lines.append(f"  {_quote(edge.src)} -> {_quote(edge.dst)}{attr_text};")

    lines.append("}")
    return "\n".join(lines) + "\n"
