"""Lowering from the expression AST to a dataflow graph.

Straight-line code is in (trivial) SSA form after renaming: each
assignment defines a fresh value, and later reads of the same variable
refer to the most recent definition.  External variables (read before any
definition) become free inputs; they carry no graph node, only port
bookkeeping, matching how the benchmark DFGs in the literature are drawn
(primary inputs are implicit).

Constants are treated like external inputs by default (hardware would
source them from the instruction word or a small ROM); pass
``materialize_constants=True`` to create explicit zero-delay CONST nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ParseError
from repro.ir.dfg import DataFlowGraph
from repro.ir.expr import Assign, BinOp, Expr, Name, Number, Program, UnaryOp
from repro.ir.ops import DelayModel, OpKind

_BINOPS: Dict[str, OpKind] = {
    "+": OpKind.ADD,
    "-": OpKind.SUB,
    "*": OpKind.MUL,
    "/": OpKind.DIV,
    "<": OpKind.LT,
    "<=": OpKind.LE,
    ">": OpKind.GT,
    ">=": OpKind.GE,
    "==": OpKind.EQ,
    "!=": OpKind.NE,
    "&": OpKind.AND,
    "|": OpKind.OR,
    "^": OpKind.XOR,
    "<<": OpKind.SHL,
    ">>": OpKind.SHR,
}

_UNOPS: Dict[str, OpKind] = {
    "-": OpKind.NEG,
    "~": OpKind.NOT,
}


@dataclass
class LoweringResult:
    """Output of :func:`lower_program`.

    Attributes
    ----------
    dfg:
        The dataflow graph; node ids are ``t1, t2, ...`` in evaluation
        order, with ``name`` set to the defined variable where applicable.
    outputs:
        Final definition of each assigned variable — variable name to the
        node id computing it (or ``None`` when the definition is a plain
        copy of an input/constant).
    inputs:
        For each free input, the list of ``(node_id, port)`` consumers.
    constants:
        Same bookkeeping for literal operands (empty when constants are
        materialized as nodes).
    """

    dfg: DataFlowGraph
    outputs: Dict[str, Optional[str]] = field(default_factory=dict)
    inputs: Dict[str, List[Tuple[str, int]]] = field(default_factory=dict)
    constants: Dict[int, List[Tuple[str, int]]] = field(default_factory=dict)


class _Lowerer:
    def __init__(
        self,
        name: str,
        delay_model: Optional[DelayModel],
        materialize_constants: bool,
    ):
        self.result = LoweringResult(
            dfg=DataFlowGraph(name=name, delay_model=delay_model)
        )
        self._definitions: Dict[str, Optional[str]] = {}
        self._materialize_constants = materialize_constants
        self._counter = 0
        self._const_nodes: Dict[int, str] = {}
        # Variables that are plain copies: name -> root input name or
        # literal value (resolved transitively at definition time).
        self._input_aliases: Dict[str, str] = {}
        self._const_aliases: Dict[str, int] = {}

    def _fresh_id(self) -> str:
        self._counter += 1
        return f"t{self._counter}"

    def lower(self, program: Program) -> LoweringResult:
        for statement in program.statements:
            self._lower_statement(statement)
        self.result.outputs = dict(self._definitions)
        return self.result

    def _lower_statement(self, statement: Assign) -> None:
        value = self._lower_expr(statement.expr)
        self._definitions[statement.target] = value
        if value is None:
            # A plain copy: remember what it aliases so later reads
            # resolve to the root input / literal.
            expr = statement.expr
            if isinstance(expr, Name):
                if expr.ident in self._const_aliases:
                    self._const_aliases[statement.target] = (
                        self._const_aliases[expr.ident]
                    )
                else:
                    self._input_aliases[statement.target] = (
                        self._input_aliases.get(expr.ident, expr.ident)
                    )
            elif isinstance(expr, Number):
                self._const_aliases[statement.target] = expr.value
        else:
            node = self.result.dfg.node(value)
            if node.name is None:
                node.name = statement.target

    def _lower_expr(self, expr: Expr) -> Optional[str]:
        """Return the node id producing ``expr``, or ``None`` for frees.

        ``None`` means "comes from outside the block" (input or literal);
        the caller records port bookkeeping through :meth:`_wire_operand`.
        """
        if isinstance(expr, BinOp):
            kind = _BINOPS.get(expr.op)
            if kind is None:
                raise ParseError(f"unsupported operator {expr.op!r}")
            node_id = self.result.dfg.add_node(self._fresh_id(), kind).id
            self._wire_operand(expr.lhs, node_id, port=0)
            self._wire_operand(expr.rhs, node_id, port=1)
            return node_id
        if isinstance(expr, UnaryOp):
            kind = _UNOPS.get(expr.op)
            if kind is None:
                raise ParseError(f"unsupported unary operator {expr.op!r}")
            node_id = self.result.dfg.add_node(self._fresh_id(), kind).id
            self._wire_operand(expr.operand, node_id, port=0)
            return node_id
        if isinstance(expr, Name):
            return self._definitions.get(expr.ident)
        if isinstance(expr, Number):
            if self._materialize_constants:
                return self._const_node(expr.value)
            return None
        raise ParseError(f"cannot lower expression {expr!r}")

    def _const_node(self, value: int) -> str:
        node_id = self._const_nodes.get(value)
        if node_id is None:
            node_id = self.result.dfg.add_node(
                f"c{value}", OpKind.CONST, name=str(value)
            ).id
            self._const_nodes[value] = node_id
        return node_id

    def _wire_operand(self, operand: Expr, consumer: str, port: int) -> None:
        if isinstance(operand, Name) and operand.ident not in self._definitions:
            self.result.inputs.setdefault(operand.ident, []).append(
                (consumer, port)
            )
            return
        if isinstance(operand, Number) and not self._materialize_constants:
            self.result.constants.setdefault(operand.value, []).append(
                (consumer, port)
            )
            return
        producer = self._lower_expr(operand)
        if producer is None:
            # A variable defined as a plain copy of an input/constant:
            # resolve through the alias chain to the root free value.
            if isinstance(operand, Name):
                if operand.ident in self._const_aliases:
                    value = self._const_aliases[operand.ident]
                    if self._materialize_constants:
                        self.result.dfg.add_edge(
                            self._const_node(value), consumer, port=port
                        )
                    else:
                        self.result.constants.setdefault(value, []).append(
                            (consumer, port)
                        )
                    return
                root = self._input_aliases.get(operand.ident, operand.ident)
                self.result.inputs.setdefault(root, []).append(
                    (consumer, port)
                )
                return
            raise ParseError(f"operand {operand!r} has no producer")
        self.result.dfg.add_edge(producer, consumer, port=port)


def lower_program(
    program: Program,
    name: str = "block",
    delay_model: Optional[DelayModel] = None,
    materialize_constants: bool = False,
) -> LoweringResult:
    """Lower a parsed :class:`Program` into a :class:`DataFlowGraph`."""
    lowerer = _Lowerer(name, delay_model, materialize_constants)
    return lowerer.lower(program)
