"""Well-formedness checks for dataflow graphs.

:func:`validate_dfg` returns a list of human-readable problems (empty
means valid) and optionally raises.  It is used by the benchmark registry
(every shipped graph must validate) and by tests.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import GraphError
from repro.ir.dfg import DataFlowGraph
from repro.ir.ops import OpKind

# Maximum operand count per op kind; None = unbounded (e.g. NOP joins).
_MAX_ARITY: Dict[OpKind, int] = {
    OpKind.NEG: 1,
    OpKind.NOT: 1,
    OpKind.MOVE: 1,
    OpKind.WIRE: 1,
    OpKind.CONST: 0,
}


def validate_dfg(dfg: DataFlowGraph, raise_on_error: bool = True) -> List[str]:
    """Check structural well-formedness of ``dfg``.

    Checks: acyclicity, port uniqueness per consumer, arity limits for
    single-operand ops, non-negative delays and weights.
    """
    problems: List[str] = []

    cycle = dfg.find_cycle()
    if cycle is not None:
        problems.append("graph has a cycle: " + " -> ".join(cycle))

    for node in dfg.node_objects():
        if node.delay < 0:
            problems.append(f"node {node.id} has negative delay {node.delay}")
        max_arity = _MAX_ARITY.get(node.op)
        if max_arity is not None and dfg.in_degree(node.id) > max_arity:
            problems.append(
                f"node {node.id} ({node.op.name}) has "
                f"{dfg.in_degree(node.id)} operands, at most {max_arity} allowed"
            )

    seen_ports: Dict[Tuple[str, int], str] = {}
    for edge in dfg.edges():
        if edge.weight < 0:
            problems.append(
                f"edge {edge.src}->{edge.dst} has negative weight {edge.weight}"
            )
        if edge.port is not None:
            key = (edge.dst, edge.port)
            if key in seen_ports:
                problems.append(
                    f"port {edge.port} of {edge.dst} driven by both "
                    f"{seen_ports[key]} and {edge.src}"
                )
            else:
                seen_ports[key] = edge.src

    if problems and raise_on_error:
        raise GraphError("; ".join(problems))
    return problems
