"""A compiled, cache-friendly view of a :class:`DataFlowGraph`.

The mutable graph is a dict-of-dicts — ideal for construction and
refinement, wasteful for the analysis sweeps the schedulers run in
their inner loops (every ``topological_order`` call re-walked the dicts
and allocated fresh adjacency lists).  :class:`GraphView` compiles the
graph once into CSR-style flat arrays:

* node ids interned to dense integer indices (insertion order, so all
  tie-breaks match the mutable graph's iteration order),
* successor/predecessor adjacency as offset + target + weight arrays,
* per-node delays, and
* lazily cached derived data: topological order, source/sink
  distances, and the diameter.

A view is a snapshot: it is built by :meth:`DataFlowGraph.view` against
the graph's mutation counter and is transparently rebuilt after any
mutation (including in-place ``Node.delay`` / ``Edge.weight`` writes,
which notify the owning graph).  Holders of a view across mutations
must re-fetch it via ``dfg.view()``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import CycleError

__all__ = ["GraphView"]


class GraphView:
    """CSR snapshot of one :class:`~repro.ir.dfg.DataFlowGraph`.

    Attributes
    ----------
    ids:
        Node ids in insertion order; ``ids[i]`` is the id of index ``i``.
    index:
        Reverse map ``id -> index``.
    delays:
        Per-index operation delay.
    succ_off / succ_dst / succ_w:
        CSR successor adjacency: the out-edges of index ``i`` are
        ``succ_dst[succ_off[i]:succ_off[i + 1]]`` with edge weights in
        the parallel ``succ_w`` slice, in edge-insertion order.
    pred_off / pred_src / pred_w:
        The symmetric predecessor arrays.
    """

    __slots__ = (
        "version",
        "ids",
        "index",
        "delays",
        "succ_off",
        "succ_dst",
        "succ_w",
        "pred_off",
        "pred_src",
        "pred_w",
        "_topo",
        "_sdist",
        "_tdist",
        "_diameter",
    )

    def __init__(self, dfg):
        self.version = dfg.mutation_count
        ids = dfg.nodes()
        index = {node_id: i for i, node_id in enumerate(ids)}
        self.ids = ids
        self.index = index
        self.delays = [dfg.delay(node_id) for node_id in ids]

        succ_off = [0] * (len(ids) + 1)
        succ_dst: List[int] = []
        succ_w: List[int] = []
        pred_off = [0] * (len(ids) + 1)
        pred_src: List[int] = []
        pred_w: List[int] = []
        for i, node_id in enumerate(ids):
            for edge in dfg.out_edges(node_id):
                succ_dst.append(index[edge.dst])
                succ_w.append(edge.weight)
            succ_off[i + 1] = len(succ_dst)
        for i, node_id in enumerate(ids):
            for edge in dfg.in_edges(node_id):
                pred_src.append(index[edge.src])
                pred_w.append(edge.weight)
            pred_off[i + 1] = len(pred_src)
        self.succ_off, self.succ_dst, self.succ_w = succ_off, succ_dst, succ_w
        self.pred_off, self.pred_src, self.pred_w = pred_off, pred_src, pred_w

        # Kahn's algorithm over the int arrays, FIFO with insertion-order
        # seeding — byte-identical order to the dict-based implementation
        # this replaces.
        n = len(ids)
        in_deg = [pred_off[i + 1] - pred_off[i] for i in range(n)]
        ready = [i for i in range(n) if in_deg[i] == 0]
        head = 0
        while head < len(ready):
            u = ready[head]
            head += 1
            for k in range(succ_off[u], succ_off[u + 1]):
                v = succ_dst[k]
                in_deg[v] -= 1
                if in_deg[v] == 0:
                    ready.append(v)
        if len(ready) != n:
            raise CycleError(dfg.find_cycle())
        self._topo: List[int] = ready
        self._sdist: Optional[List[int]] = None
        self._tdist: Optional[List[int]] = None
        self._diameter: Optional[int] = None

    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return len(self.ids)

    @property
    def num_edges(self) -> int:
        return len(self.succ_dst)

    def topo_indices(self) -> List[int]:
        """Topological order as indices (shared list; do not mutate)."""
        return self._topo

    def topological_ids(self) -> List[str]:
        """Topological order as node ids (fresh list per call)."""
        ids = self.ids
        return [ids[i] for i in self._topo]

    def successors(self, i: int) -> List[Tuple[int, int]]:
        """``(target index, edge weight)`` pairs of index ``i``."""
        lo, hi = self.succ_off[i], self.succ_off[i + 1]
        return list(zip(self.succ_dst[lo:hi], self.succ_w[lo:hi]))

    def predecessors(self, i: int) -> List[Tuple[int, int]]:
        """``(source index, edge weight)`` pairs of index ``i``."""
        lo, hi = self.pred_off[i], self.pred_off[i + 1]
        return list(zip(self.pred_src[lo:hi], self.pred_w[lo:hi]))

    # ------------------------------------------------------------------
    # Cached distance analyses (Definition 1 vocabulary).

    def source_distance_array(self) -> List[int]:
        """``||<-v||`` per index (shared list; do not mutate)."""
        if self._sdist is None:
            sdist = [0] * len(self.ids)
            delays = self.delays
            pred_off, pred_src, pred_w = (
                self.pred_off,
                self.pred_src,
                self.pred_w,
            )
            for u in self._topo:
                best = 0
                for k in range(pred_off[u], pred_off[u + 1]):
                    cand = sdist[pred_src[k]] + pred_w[k]
                    if cand > best:
                        best = cand
                sdist[u] = best + delays[u]
            self._sdist = sdist
        return self._sdist

    def sink_distance_array(self) -> List[int]:
        """``||v->||`` per index (shared list; do not mutate)."""
        if self._tdist is None:
            tdist = [0] * len(self.ids)
            delays = self.delays
            succ_off, succ_dst, succ_w = (
                self.succ_off,
                self.succ_dst,
                self.succ_w,
            )
            for u in reversed(self._topo):
                best = 0
                for k in range(succ_off[u], succ_off[u + 1]):
                    cand = tdist[succ_dst[k]] + succ_w[k]
                    if cand > best:
                        best = cand
                tdist[u] = best + delays[u]
            self._tdist = tdist
        return self._tdist

    def diameter(self) -> int:
        """``||G||``: the critical-path length (0 for the empty graph)."""
        if self._diameter is None:
            if not self.ids:
                self._diameter = 0
            else:
                sdist = self.source_distance_array()
                tdist = self.sink_distance_array()
                delays = self.delays
                self._diameter = max(
                    sdist[i] + tdist[i] - delays[i]
                    for i in range(len(self.ids))
                )
        return self._diameter

    def __repr__(self):
        return (
            f"GraphView(nodes={self.num_nodes}, edges={self.num_edges}, "
            f"version={self.version})"
        )
