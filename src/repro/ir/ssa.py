"""Loop SSA construction: the paper's phi-node scenario, executable.

Section 1 of the paper: "the φ nodes, as artifacts of static single
assignment (SSA) analysis, can be resolved to either register moves or
void operation only after register allocation."  This module builds
exactly those artifacts for the common HLS case — a single loop body:

* variables that are both *read* and *re-assigned* by the body are
  loop-carried; each gets a :attr:`OpKind.PHI` node at the top of the
  body DFG selecting between the loop-entry value (a free input) and
  the previous iteration's value;
* the previous-iteration wiring is a *back edge* with iteration
  distance 1 — recorded in :attr:`LoopSSA.back_edges` rather than as a
  DFG edge (the body DFG stays acyclic).

The scheduler schedules the PHIs like any ALU op; after register
allocation, :func:`repro.core.refine.resolve_phi` turns each into a
register move (different registers) or a zero-delay no-op (coalesced) —
refining the *soft* schedule without invalidating it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ParseError
from repro.ir.dfg import DataFlowGraph
from repro.ir.expr import Name, Program, walk
from repro.ir.lowering import LoweringResult, lower_program
from repro.ir.ops import DelayModel, OpKind


@dataclass
class LoopSSA:
    """SSA form of one loop body.

    Attributes
    ----------
    dfg:
        The acyclic body DFG, including one PHI node per loop-carried
        variable (in-degree 0 or 1: the loop-entry value is a free
        input; the recurrence arrives via ``back_edges``).
    phis:
        Variable name -> PHI node id.
    back_edges:
        PHI node id -> node id computing the variable's next-iteration
        value (iteration distance 1).
    lowering:
        The underlying straight-line lowering result.
    """

    dfg: DataFlowGraph
    phis: Dict[str, str] = field(default_factory=dict)
    back_edges: Dict[str, str] = field(default_factory=dict)
    lowering: Optional[LoweringResult] = None

    def loop_carried_variables(self) -> List[str]:
        return list(self.phis)


def _reads_and_writes(program: Program) -> Tuple[Set[str], Set[str]]:
    reads: Set[str] = set()
    writes: Set[str] = set()
    defined: Set[str] = set()
    for statement in program.statements:
        for expr in walk(statement.expr):
            if isinstance(expr, Name):
                # A read of a name not yet defined in this body reads
                # the value flowing in from before the statement.
                if expr.ident not in defined:
                    reads.add(expr.ident)
        writes.add(statement.target)
        defined.add(statement.target)
    return reads, writes


def loop_ssa(
    program: Program,
    name: str = "loop",
    delay_model: Optional[DelayModel] = None,
) -> LoopSSA:
    """Build SSA for a loop whose body is ``program``.

    Loop-carried variables are those read (before any body definition)
    *and* re-assigned by the body.  Each becomes a PHI whose first
    operand is the loop-entry value (free input ``<var>``) and whose
    recurrence operand is the body's final definition, recorded as a
    distance-1 back edge.
    """
    reads, writes = _reads_and_writes(program)
    carried = sorted(reads & writes)

    lowering = lower_program(program, name=name, delay_model=delay_model)
    dfg = lowering.dfg

    result = LoopSSA(dfg=dfg, lowering=lowering)
    for variable in carried:
        phi_id = f"phi_{variable}"
        if phi_id in dfg:
            raise ParseError(f"phi id collision for {variable!r}")
        dfg.add_node(phi_id, OpKind.PHI, name=f"phi({variable})")
        result.phis[variable] = phi_id
        # Reads of the entry value now come from the phi: rewire the
        # free-input consumers the lowering recorded.
        for consumer, port in lowering.inputs.pop(variable, []):
            dfg.add_edge(phi_id, consumer, port=port)
        final_def = lowering.outputs.get(variable)
        if final_def is not None:
            result.back_edges[phi_id] = final_def
    return result


def resolve_all_phis(ssa: LoopSSA, register_of: Dict[str, int]) -> Dict[str, str]:
    """Decide each PHI's fate from a register allocation.

    A PHI whose entry/recurrence values land in the same register is a
    void operation (``"nop"``); otherwise it is a register move
    (``"move"``).  Returns phi id -> decision; apply the decisions to a
    live schedule with :func:`repro.core.refine.resolve_phi`.
    """
    decisions: Dict[str, str] = {}
    for variable, phi_id in ssa.phis.items():
        source = ssa.back_edges.get(phi_id)
        same = (
            source is not None
            and register_of.get(phi_id) is not None
            and register_of.get(phi_id) == register_of.get(source)
        )
        decisions[phi_id] = "nop" if same else "move"
    return decisions
