"""Side-by-side comparison of the hard and soft flows."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.flows.hard_flow import HardFlowResult, run_hard_flow
from repro.flows.soft_flow import SoftFlowResult, run_soft_flow
from repro.ir.dfg import DataFlowGraph
from repro.physical.wire_model import WireModel
from repro.scheduling.resources import ResourceSet


@dataclass
class FlowComparison:
    """Lengths of each stage under both flows, ready to print."""

    benchmark: str
    hard: HardFlowResult
    soft: SoftFlowResult

    def rows(self):
        return [
            ("initial schedule", self.hard.initial.length,
             self.soft.initial.length),
            ("after spilling", self.hard.after_spill.length,
             self.soft.after_spill.length),
            ("after wire delay", self.hard.final.length,
             self.soft.final.length),
        ]

    def render(self) -> str:
        lines = [
            f"benchmark: {self.benchmark}",
            f"{'stage':<20} {'hard flow':>10} {'soft flow':>10}",
        ]
        for label, hard_len, soft_len in self.rows():
            lines.append(f"{label:<20} {hard_len:>10} {soft_len:>10}")
        lines.append(
            f"{'spilled values':<20} {len(self.hard.spilled_values):>10} "
            f"{len(self.soft.spilled_values):>10}"
        )
        lines.append(
            f"{'registers':<20} "
            f"{self.hard.allocation.count if self.hard.allocation else '-':>10} "
            f"{self.soft.allocation.count if self.soft.allocation else '-':>10}"
        )
        return "\n".join(lines)


def compare_flows(
    dfg: DataFlowGraph,
    resources: ResourceSet,
    max_registers: Optional[int] = None,
    wire_model: Optional[WireModel] = None,
    meta: str = "meta2-topological",
) -> FlowComparison:
    """Run both flows on the same inputs and package the comparison."""
    hard = run_hard_flow(
        dfg,
        resources,
        max_registers=max_registers,
        wire_model=wire_model,
    )
    soft = run_soft_flow(
        dfg,
        resources,
        max_registers=max_registers,
        wire_model=wire_model,
        meta=meta,
    )
    return FlowComparison(benchmark=dfg.name or "dfg", hard=hard, soft=soft)
