"""End-to-end HLS flows: the traditional hard flow vs the soft flow.

These encode the paper's motivation as runnable pipelines:

* :mod:`repro.flows.hard_flow` — schedule hard, then patch the schedule
  (or iterate the whole flow) whenever allocation or physical design
  invalidates it.
* :mod:`repro.flows.soft_flow` — schedule softly, let allocation and
  physical design *refine* the partial order, and harden exactly once
  at the end.
* :mod:`repro.flows.report` — side-by-side comparison records.
"""

from repro.flows.hard_flow import HardFlowResult, run_hard_flow
from repro.flows.soft_flow import SoftFlowResult, run_soft_flow
from repro.flows.report import FlowComparison, compare_flows

__all__ = [
    "HardFlowResult",
    "run_hard_flow",
    "SoftFlowResult",
    "run_soft_flow",
    "FlowComparison",
    "compare_flows",
]
