"""The traditional (hard) HLS flow the paper criticises.

Pipeline: list-schedule -> allocate registers -> (if pressure exceeds
the register file) insert spill code into the *behavior* and patch the
schedule by pushing later steps down -> floorplan -> back-annotate wire
delays -> patch again.  Each patch is the "trivial fix ... which leads
to inferior result" of Section 1; the alternative the paper mentions —
iterating the entire design process — is modelled by the optional
``iterate`` flag, which reruns the list scheduler on the spill-augmented
graph instead of patching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.allocation.left_edge import RegisterAllocation, left_edge_allocate
from repro.allocation.lifetimes import value_lifetimes
from repro.allocation.spill import choose_spill_candidates
from repro.ir.dfg import DataFlowGraph
from repro.ir.ops import OpKind
from repro.physical.annotate import annotate_schedule
from repro.physical.floorplan import Floorplan, grid_floorplan
from repro.physical.wire_model import WireModel
from repro.scheduling.base import Schedule
from repro.scheduling.list_scheduler import ListPriority, list_schedule
from repro.scheduling.resources import MEM, ResourceSet


@dataclass
class HardFlowResult:
    """Everything the hard flow produced, stage by stage."""

    initial: Schedule
    after_spill: Schedule
    final: Schedule
    spilled_values: List[str] = field(default_factory=list)
    allocation: Optional[RegisterAllocation] = None
    floorplan: Optional[Floorplan] = None
    wire_delays: Dict[Tuple[str, str], int] = field(default_factory=dict)
    reschedules: int = 0

    @property
    def length(self) -> int:
        return self.final.length


def run_hard_flow(
    dfg: DataFlowGraph,
    resources: ResourceSet,
    max_registers: Optional[int] = None,
    wire_model: Optional[WireModel] = None,
    priority: ListPriority = ListPriority.READY_ORDER,
    iterate: bool = False,
) -> HardFlowResult:
    """Run the hard flow on a copy of ``dfg`` (the input is untouched)."""
    working = dfg.copy()
    if max_registers is not None and resources.count(MEM) == 0:
        resources = resources.with_added(MEM, 1)
    initial = list_schedule(working, resources, priority)
    current = initial
    reschedules = 0

    # --- register allocation / spilling -----------------------------
    spilled: List[str] = []
    if max_registers is not None:
        spilled = choose_spill_candidates(current, max_registers)
        for value in spilled:
            _insert_spill_nodes(working, value)
        if spilled:
            if iterate:
                current = list_schedule(working, resources, priority)
                reschedules += 1
            else:
                current = _patched_schedule(working, current, resources)
    after_spill = current
    allocation = left_edge_allocate(
        current, lifetimes=value_lifetimes(current)
    )

    # --- physical design / wire delay --------------------------------
    floorplan = None
    delays: Dict[Tuple[str, str], int] = {}
    if wire_model is not None:
        unit_labels = [
            f"{fu_type.name}{index}" for fu_type, index in resources.instances()
        ]
        floorplan = grid_floorplan(unit_labels)
        delays = _hard_wire_delays(current, floorplan, wire_model)
        if delays:
            current = annotate_schedule(current, delays)

    return HardFlowResult(
        initial=initial,
        after_spill=after_spill,
        final=current,
        spilled_values=spilled,
        allocation=allocation,
        floorplan=floorplan,
        wire_delays=delays,
        reschedules=reschedules,
    )


def _insert_spill_nodes(
    dfg: DataFlowGraph, value_id: str
) -> Tuple[str, Optional[str]]:
    """Spill ``value_id`` in the behavior graph (store + load nodes).

    Mirrors :func:`repro.core.refine.insert_spill`: a value with no
    consumers gets only the store.
    """
    store_id = f"{value_id}_st"
    load_id = f"{value_id}_ld"
    suffix = 0
    while store_id in dfg or load_id in dfg:
        suffix += 1
        store_id = f"{value_id}_st{suffix}"
        load_id = f"{value_id}_ld{suffix}"
    consumers = dfg.successors(value_id)
    dfg.add_node(store_id, OpKind.STORE, name=f"spill {value_id}")
    dfg.add_edge(value_id, store_id, port=0)
    if not consumers:
        return store_id, None
    dfg.add_node(load_id, OpKind.LOAD, name=f"reload {value_id}")
    dfg.add_edge(store_id, load_id)
    for consumer in consumers:
        edge = dfg.edge(value_id, consumer)
        port, weight = edge.port, edge.weight
        dfg.remove_edge(value_id, consumer)
        dfg.add_edge(load_id, consumer, port=port, weight=weight)
    return store_id, load_id


def _patched_schedule(
    dfg: DataFlowGraph,
    schedule: Schedule,
    resources: ResourceSet,
) -> Schedule:
    """The trivial hard-schedule repair for inserted spill code.

    Every store/load pair opens two fresh steps right after the spilled
    value's producer: all later operations shift down (Figure 1(c)'s
    "inferior result").  New nodes are placed in the opened steps.
    """
    mem_delay = 1
    new_times: Dict[str, int] = dict(schedule.start_times)
    # Process inserted nodes in dependency order (stores before their
    # loads), so every producer has a time when its consumer is placed.
    inserted = [
        n for n in dfg.topological_order() if n not in new_times
    ]
    for node_id in inserted:
        producers = [
            p for p in dfg.predecessors(node_id) if p in new_times
        ]
        at = (
            max(new_times[p] + dfg.delay(p) for p in producers)
            if producers
            else 0
        )
        # Open mem_delay fresh steps at `at`: shift everything >= at.
        for other in new_times:
            if new_times[other] >= at:
                new_times[other] += mem_delay
        new_times[node_id] = at
    return Schedule(
        dfg=dfg,
        start_times=new_times,
        binding=dict(schedule.binding),
        resources=resources,
        algorithm=f"{schedule.algorithm}+spill-patch",
    )


def _hard_wire_delays(
    schedule: Schedule,
    floorplan: Floorplan,
    model: WireModel,
) -> Dict[Tuple[str, str], int]:
    """Wire delays between bound units for every cross-unit DFG edge."""
    dfg = schedule.dfg
    delays: Dict[Tuple[str, str], int] = {}
    for edge in dfg.edges():
        src_unit = schedule.binding.get(edge.src)
        dst_unit = schedule.binding.get(edge.dst)
        if src_unit is None or dst_unit is None or src_unit == dst_unit:
            continue
        src_label = f"{src_unit[0].name}{src_unit[1]}"
        dst_label = f"{dst_unit[0].name}{dst_unit[1]}"
        delay = model.delay_between(floorplan, src_label, dst_label)
        if delay > 0:
            delays[(edge.src, edge.dst)] = delay
    return delays
