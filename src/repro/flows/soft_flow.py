"""The soft HLS flow the paper proposes.

Pipeline: threaded-schedule softly -> harden *tentatively* to analyse
register pressure -> spill through the online scheduler (the state
absorbs the store/load ops) -> floorplan the threads (threads are
units) -> back-annotate wire delays as edge weights -> harden exactly
once at the end.  No stage ever invalidates a previous one — the
partial order only gets refined.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.allocation.left_edge import RegisterAllocation, left_edge_allocate
from repro.allocation.spill import choose_spill_candidates
from repro.core.meta import MetaSchedule
from repro.core.refine import annotate_wire_weights, insert_spill
from repro.core.scheduler import ThreadedScheduler
from repro.ir.dfg import DataFlowGraph
from repro.physical.annotate import wire_delays_for_state
from repro.physical.floorplan import Floorplan, grid_floorplan
from repro.physical.wire_model import WireModel
from repro.scheduling.base import Schedule
from repro.scheduling.resources import MEM, ResourceSet


@dataclass
class SoftFlowResult:
    """Everything the soft flow produced, stage by stage."""

    scheduler: ThreadedScheduler
    initial: Schedule
    after_spill: Schedule
    final: Schedule
    spilled_values: List[str] = field(default_factory=list)
    allocation: Optional[RegisterAllocation] = None
    floorplan: Optional[Floorplan] = None
    wire_delays: Dict[Tuple[str, str], int] = field(default_factory=dict)

    @property
    def length(self) -> int:
        return self.final.length


def run_soft_flow(
    dfg: DataFlowGraph,
    resources: ResourceSet,
    max_registers: Optional[int] = None,
    wire_model: Optional[WireModel] = None,
    meta: Union[str, MetaSchedule] = "meta2-topological",
) -> SoftFlowResult:
    """Run the soft flow on a copy of ``dfg`` (the input is untouched).

    When spilling is possible (``max_registers`` given) the resource set
    is extended with a memory port if it lacks one — the thread the
    store/load operations will live on.
    """
    working = dfg.copy()
    if max_registers is not None and resources.count(MEM) == 0:
        resources = resources.with_added(MEM, 1)

    scheduler = ThreadedScheduler(working, resources=resources, meta=meta)
    scheduler.run()
    initial = scheduler.harden()

    # --- register allocation: spill through the online scheduler -----
    spilled: List[str] = []
    if max_registers is not None:
        spilled = choose_spill_candidates(initial, max_registers)
        for value in spilled:
            insert_spill(scheduler.state, value)
    after_spill = scheduler.harden()
    allocation = left_edge_allocate(after_spill)

    # --- physical design: annotate, relabel, done --------------------
    floorplan = None
    delays: Dict[Tuple[str, str], int] = {}
    if wire_model is not None:
        floorplan = grid_floorplan([spec.label for spec in scheduler.state.specs])
        delays = wire_delays_for_state(scheduler.state, floorplan, wire_model)
        if delays:
            annotate_wire_weights(scheduler.state, delays)

    final = scheduler.harden()
    return SoftFlowResult(
        scheduler=scheduler,
        initial=initial,
        after_spill=after_spill,
        final=final,
        spilled_values=spilled,
        allocation=allocation,
        floorplan=floorplan,
        wire_delays=delays,
    )
