"""Command-line entry point: ``python -m repro <command>``.

Commands map one-to-one onto the experiment harnesses plus a couple of
utilities:

=============  ====================================================
figure3        the paper's Figure 3 results table
figure1        the Figure 1 walkthrough
complexity     Theorem 3 linearity measurements
coupling       phase-coupling comparison (hard patch vs soft refine)
ablation       meta-schedule sensitivity on random DAGs
benchmarks     list the shipped benchmark graphs
schedule       schedule one benchmark: ``schedule HAL "2+/-,2*" meta2``
=============  ====================================================
"""

from __future__ import annotations

import sys

from repro.experiments import complexity, figure1, figure3, meta_ablation
from repro.experiments import phase_coupling


def _cmd_benchmarks(_args) -> int:
    from repro.graphs import list_graphs

    for info in list_graphs():
        tag = "paper" if info.in_paper else "extra"
        print(f"{info.name:<6} [{tag}] {info.description}")
    return 0


def _cmd_schedule(args) -> int:
    from repro.core.scheduler import threaded_schedule
    from repro.graphs import get_graph
    from repro.scheduling.resources import ResourceSet

    if not args:
        print(
            'usage: python -m repro schedule <BENCH> ["2+/-,2*"] [meta2]',
            file=sys.stderr,
        )
        return 2
    name = args[0]
    constraint = args[1] if len(args) > 1 else "2+/-,2*"
    meta = args[2] if len(args) > 2 else "meta2"
    graph = get_graph(name)
    schedule = threaded_schedule(
        graph, ResourceSet.parse(constraint), meta=meta
    )
    print(
        f"{name} on {constraint} with {meta}: "
        f"{schedule.length} control steps"
    )
    print(schedule.table())
    return 0


_COMMANDS = {
    "figure3": lambda args: (figure3.main(), 0)[1],
    "figure1": lambda args: (figure1.main(), 0)[1],
    "complexity": lambda args: (complexity.main(), 0)[1],
    "coupling": lambda args: (phase_coupling.main(), 0)[1],
    "ablation": lambda args: (meta_ablation.main(), 0)[1],
    "benchmarks": _cmd_benchmarks,
    "schedule": _cmd_schedule,
}


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help", "help"):
        print(__doc__)
        return 0
    command = _COMMANDS.get(argv[0])
    if command is None:
        print(f"unknown command {argv[0]!r}; try --help", file=sys.stderr)
        return 2
    return command(argv[1:])


if __name__ == "__main__":
    sys.exit(main())
