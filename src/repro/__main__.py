"""Command-line entry point: ``python -m repro <command>`` (or the
``repro`` console script once the package is installed).

Commands map one-to-one onto the experiment harnesses plus the batch
engine and a couple of utilities:

=============  ====================================================
figure3        the paper's Figure 3 results table
figure1        the Figure 1 walkthrough
complexity     Theorem 3 linearity measurements
coupling       phase-coupling comparison (hard patch vs soft refine)
ablation       meta-schedule sensitivity on random DAGs
benchmarks     list the shipped benchmark graphs
schedule       schedule one benchmark: ``schedule HAL "2+/-,2*" meta2``
batch          sweep jobs through the parallel batch engine
bench          run the unified benchmark suite (``--check`` gates CI)
serve          run the async scheduling service (JSON over HTTP)
dispatch       route jobs across several serve replicas
               (consistent-hash on the cache key, with failover)
hier           hierarchically schedule one large graph (partition,
               fan out window-constrained jobs, stitch, iterate)
improve        anytime-improve a cached result toward the proved
               optimum (interruptible branch-and-bound)
=============  ====================================================

Exit codes: 0 success, 1 benchmark regression (``bench --check``),
2 usage or input error (unknown command, unknown benchmark, malformed
resource specification, ...).
"""

from __future__ import annotations

import sys

from repro.errors import ReproError


def _cmd_benchmarks(_args) -> int:
    from repro.graphs import list_graphs

    for info in list_graphs():
        tag = "paper" if info.in_paper else "extra"
        print(f"{info.name:<6} [{tag}] {info.description}")
    return 0


def _cmd_schedule(args) -> int:
    from repro.core.scheduler import threaded_schedule
    from repro.graphs import get_graph
    from repro.scheduling.resources import ResourceSet

    if not args:
        print(
            'usage: python -m repro schedule <BENCH> ["2+/-,2*"] [meta2]',
            file=sys.stderr,
        )
        return 2
    name = args[0]
    constraint = args[1] if len(args) > 1 else "2+/-,2*"
    meta = args[2] if len(args) > 2 else "meta2"
    graph = get_graph(name)
    schedule = threaded_schedule(
        graph, ResourceSet.parse(constraint), meta=meta
    )
    print(
        f"{name} on {constraint} with {meta}: "
        f"{schedule.length} control steps"
    )
    print(schedule.table())
    return 0


def _cmd_figure3(_args) -> int:
    from repro.experiments import figure3

    figure3.main()
    return 0


def _cmd_figure1(_args) -> int:
    from repro.experiments import figure1

    figure1.main()
    return 0


def _cmd_complexity(_args) -> int:
    from repro.experiments import complexity

    complexity.main()
    return 0


def _cmd_coupling(_args) -> int:
    from repro.experiments import phase_coupling

    phase_coupling.main()
    return 0


def _cmd_ablation(_args) -> int:
    from repro.experiments import meta_ablation

    meta_ablation.main()
    return 0


def _cmd_batch(args) -> int:
    from repro.engine.cli import cmd_batch

    return cmd_batch(args)


def _cmd_bench(args) -> int:
    from repro.engine.cli import cmd_bench

    return cmd_bench(args)


def _cmd_serve(args) -> int:
    from repro.engine.cli import cmd_serve

    return cmd_serve(args)


def _cmd_dispatch(args) -> int:
    from repro.engine.cli import cmd_dispatch

    return cmd_dispatch(args)


def _cmd_hier(args) -> int:
    from repro.hier.cli import cmd_hier

    return cmd_hier(args)


def _cmd_improve(args) -> int:
    from repro.improve.cli import cmd_improve

    return cmd_improve(args)


_COMMANDS = {
    "figure3": _cmd_figure3,
    "figure1": _cmd_figure1,
    "complexity": _cmd_complexity,
    "coupling": _cmd_coupling,
    "ablation": _cmd_ablation,
    "benchmarks": _cmd_benchmarks,
    "schedule": _cmd_schedule,
    "batch": _cmd_batch,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "dispatch": _cmd_dispatch,
    "hier": _cmd_hier,
    "improve": _cmd_improve,
}


def _usage(stream) -> None:
    print(__doc__, file=stream)


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help", "help"):
        _usage(sys.stdout)
        return 0
    command = _COMMANDS.get(argv[0])
    if command is None:
        print(f"error: unknown command {argv[0]!r}", file=sys.stderr)
        _usage(sys.stderr)
        return 2
    try:
        return command(argv[1:])
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
