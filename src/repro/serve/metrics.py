"""Service counters and latency percentiles for ``/metrics``.

Everything here is mutated from the server's event loop (request
handlers and flush callbacks all run on the loop thread), so plain
attributes suffice — no locks.  The snapshot served by ``/metrics`` is
a flat JSON object: counters since process start, two gauges sampled at
snapshot time, and p50/p95 over a sliding window of recent request
latencies.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict

from repro.engine.bench import percentile

__all__ = ["ServiceMetrics", "percentile"]

#: How many recent request latencies feed the percentile estimates.
LATENCY_WINDOW = 1024

#: Per-algorithm compute-time window (fresh computations only), sized
#: smaller than the request window since computes are the rarer event.
COMPUTE_WINDOW = 256


class ServiceMetrics:
    """Counters, gauges, and a latency window for one server process.

    Counter semantics:

    ``requests``
        Every HTTP request the server parsed, any endpoint or status.
    ``schedule_requests``
        ``POST /schedule`` requests admitted past validation and the
        overload check.
    ``computed``
        Results the engine actually computed (``cached=False``) — the
        number the CI smoke gate pins: a burst of duplicates must
        leave exactly one ``computed`` per unique job.
    ``cache_hits``
        Responses served from the engine's result cache.
    ``coalesced``
        Requests that attached to an identical in-flight computation
        instead of submitting their own.
    ``rejected``
        Requests turned away with 429 by the bounded queue.
    ``errors``
        Non-2xx responses other than 429 (bad request, not found, ...).
    ``batches``
        Micro-batch flushes into the engine.
    ``compute_seconds_total``
        Scheduler CPU-seconds actually spent (fresh computations only —
        cache hits and coalesced requests add nothing), also broken
        down per algorithm under ``algorithms`` with p50/p95 compute
        latencies, so serving hot spots are visible from ``/metrics``.
    ``peer_served``
        Cache entries this replica answered to peers' ``GET
        /cache/<key>`` probes (404s don't count).
    ``peer_received``
        Entries installed from peers' ``POST /cache/<key>`` publishes.
    ``hier_jobs``
        Freshly computed ``hier-fds`` jobs — ones whose artifact
        carries hierarchical-orchestration meta.
    ``hier_rounds_total`` / ``hier_partitions_total``
        Feedback rounds and graph parts those jobs reported, summed;
        divide by ``hier_jobs`` for the per-job averages.
    ``scenario_memory_jobs`` / ``scenario_io_jobs`` /
    ``scenario_reliability_jobs``
        Freshly computed jobs whose spec carried a constraint scenario
        of that mode (the artifact's ``meta.scenario.mode`` — cache
        hits and coalesced twins add nothing).
    ``improve_jobs``
        Anytime improver runs started on this replica (stream requests
        that attached to an already-running improver don't count).
    ``improved_entries``
        Cache rewrites the engine accepted from improver runs — each
        one replaced the stored entry with a strictly better result.
    ``proved_optimal``
        Improver runs that terminated with an optimality proof.
    ``sse_clients``
        Gauge: ``GET /schedule/stream`` connections currently open.

    The cluster tier's *client-side* counters (``peer_hits``,
    ``peer_fetch_errors``, ``published``, ...) live on the
    :class:`~repro.store.ClusterStore` itself and are merged into the
    ``/metrics`` snapshot by the server.
    """

    def __init__(self) -> None:
        self.requests = 0
        self.schedule_requests = 0
        self.computed = 0
        self.cache_hits = 0
        self.coalesced = 0
        self.rejected = 0
        self.errors = 0
        self.batches = 0
        self.peer_served = 0
        self.peer_received = 0
        self.hier_jobs = 0
        self.hier_rounds_total = 0
        self.hier_partitions_total = 0
        self.scenario_memory_jobs = 0
        self.scenario_io_jobs = 0
        self.scenario_reliability_jobs = 0
        self.improve_jobs = 0
        self.improved_entries = 0
        self.proved_optimal = 0
        self.sse_clients = 0
        self.in_flight = 0
        self.queued_jobs = 0
        self.compute_seconds_total = 0.0
        self._latencies: deque = deque(maxlen=LATENCY_WINDOW)
        self._compute: Dict[str, Dict[str, Any]] = {}

    def observe_latency(self, seconds: float) -> None:
        self._latencies.append(seconds)

    def record_compute(self, algorithm: str, seconds: float) -> None:
        """Account one fresh scheduler computation to ``algorithm``."""
        self.compute_seconds_total += seconds
        entry = self._compute.get(algorithm)
        if entry is None:
            entry = {
                "computed": 0,
                "seconds_total": 0.0,
                "window": deque(maxlen=COMPUTE_WINDOW),
            }
            self._compute[algorithm] = entry
        entry["computed"] += 1
        entry["seconds_total"] += seconds
        entry["window"].append(seconds)

    def record_hier(self, rounds: int, partitions: int) -> None:
        """Account one fresh hierarchical job's orchestration meta."""
        self.hier_jobs += 1
        self.hier_rounds_total += int(rounds)
        self.hier_partitions_total += int(partitions)

    def record_scenario(self, mode: str) -> None:
        """Account one fresh computation under a constraint scenario.

        Unknown modes are ignored rather than crashing the flush
        callback: the counter exists to make scenario traffic visible,
        not to re-validate artifacts the engine already produced.
        """
        field = f"scenario_{mode}_jobs"
        if hasattr(self, field):
            setattr(self, field, getattr(self, field) + 1)

    def snapshot(self) -> Dict[str, Any]:
        """The ``/metrics`` payload (plain JSON-safe dict)."""
        window = list(self._latencies)
        return {
            "requests": self.requests,
            "schedule_requests": self.schedule_requests,
            "computed": self.computed,
            "cache_hits": self.cache_hits,
            "coalesced": self.coalesced,
            "rejected": self.rejected,
            "errors": self.errors,
            "batches": self.batches,
            "peer_served": self.peer_served,
            "peer_received": self.peer_received,
            "hier_jobs": self.hier_jobs,
            "hier_rounds_total": self.hier_rounds_total,
            "hier_partitions_total": self.hier_partitions_total,
            "scenario_memory_jobs": self.scenario_memory_jobs,
            "scenario_io_jobs": self.scenario_io_jobs,
            "scenario_reliability_jobs": self.scenario_reliability_jobs,
            "improve_jobs": self.improve_jobs,
            "improved_entries": self.improved_entries,
            "proved_optimal": self.proved_optimal,
            "sse_clients": self.sse_clients,
            "in_flight": self.in_flight,
            "queue_depth": self.queued_jobs,
            "latency_p50_ms": percentile(window, 0.50) * 1000.0,
            "latency_p95_ms": percentile(window, 0.95) * 1000.0,
            "latency_samples": len(window),
            "compute_seconds_total": self.compute_seconds_total,
            "algorithms": {
                algorithm: {
                    "computed": entry["computed"],
                    "seconds_total": entry["seconds_total"],
                    "compute_p50_ms": percentile(
                        list(entry["window"]), 0.50
                    )
                    * 1000.0,
                    "compute_p95_ms": percentile(
                        list(entry["window"]), 0.95
                    )
                    * 1000.0,
                }
                for algorithm, entry in sorted(self._compute.items())
            },
        }
