"""The shared asyncio HTTP/1.1 transport core.

Both serving processes in the system — the single-replica scheduling
service (:class:`~repro.serve.server.ScheduleServer`) and the
multi-replica dispatcher (:class:`~repro.dispatch.router.DispatchRouter`)
— speak the same deliberately small dialect of HTTP/1.1: JSON bodies,
keep-alive by default, bounded heads and bodies, no chunked encoding.
:class:`HttpServerCore` owns that transport so the two front ends only
implement :meth:`HttpServerCore.dispatch`.

Handlers return ``(status, body, extra_headers)`` where ``body`` is
either a JSON-safe dict (encoded canonically here) or raw ``bytes``
passed through untouched.  The bytes path is what lets the dispatcher
relay a replica's response verbatim, preserving the serving layer's
byte-determinism contract across a network hop.  The cluster store's
``GET/POST /cache/<key>`` exchanges ride the same transport — a peer
is just another client speaking the same dialect.

Transport refusals carry their HTTP status with them:

>>> exc = BadRequest("request body too large", 413)
>>> exc.status, str(exc)
(413, 'request body too large')
>>> REASONS[exc.status]
'Payload Too Large'
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Tuple, Union

from repro.errors import ReproError
from repro.serve.protocol import encode_json, error_payload

#: Hard cap on request bodies (inline graphs get large, not huge).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Hard cap on the request line + headers block.
MAX_HEADER_BYTES = 64 * 1024

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: A handler's body: a JSON-safe dict, pre-encoded bytes to relay, or
#: a :class:`StreamBody` for incremental delivery.
Body = Union[Dict, bytes, "StreamBody"]


class BadRequest(Exception):
    """Transport-level refusal (malformed HTTP, oversized payload)."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


class StreamBody:
    """A streaming response body: an async iterator of chunks.

    The transport writes the response head with no ``Content-Length``
    and ``Connection: close`` — this dialect has no chunked encoding,
    so the end of the stream *is* the end of the connection.  Each
    chunk (``bytes`` or ``str``) is flushed as soon as the producer
    yields it, which is what makes live server-sent events possible
    over the same core.  The iterator's ``aclose`` runs even when the
    client disconnects mid-stream, so producers can release
    subscriptions in a ``finally``.
    """

    def __init__(self, chunks, content_type: str = "text/event-stream"):
        self.chunks = chunks
        self.content_type = content_type


def parse_query(query: str) -> Dict[str, str]:
    """Decode a raw query string into a flat dict (last wins).

    Minimal on purpose, like the rest of the dialect: ``+`` and
    percent-escapes decode, repeated keys keep the last value, bare
    keys map to ``""``.
    """
    from urllib.parse import parse_qsl

    return dict(parse_qsl(query, keep_blank_values=True))


class HttpServerCore:
    """Listener lifecycle + request/response plumbing for one service.

    Subclasses implement :meth:`dispatch` (and usually add their own
    state on top).  ``on_request_error`` is a counter hook: it fires
    once per request the core itself had to refuse or that dispatch
    crashed out of, so front ends can account errors without owning
    the transport."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0):
        self.host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._bound_port: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle.

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`listen`)."""
        if self._bound_port is not None:
            return self._bound_port
        return self._requested_port

    async def listen(self) -> None:
        """Bind and start accepting connections.

        Binding failures (port taken, privileged port, bad host) raise
        a clean :class:`ReproError` — CLI exit code 2, never a
        traceback."""
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self._requested_port
            )
        except OSError as exc:
            raise ReproError(
                f"cannot listen on {self.host}:{self._requested_port}: "
                f"{exc}"
            )
        self._bound_port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "call listen() first"
        async with self._server:
            await self._server.serve_forever()

    async def close_listener(self) -> None:
        """Stop accepting new connections (idempotent)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------
    # Hooks.

    async def dispatch(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        query: str = "",
    ) -> Tuple[int, Body, Dict[str, str]]:
        """Answer one request; override in subclasses.

        ``query`` is the raw query string (no leading ``?``, empty
        when absent); decode it with :func:`parse_query` when a route
        takes parameters.
        """
        raise NotImplementedError

    def on_request_error(self) -> None:
        """Called once per refused/crashed request (counter hook)."""

    # ------------------------------------------------------------------
    # Connection plumbing.

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body, query = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                try:
                    status, payload, extra = await self.dispatch(
                        method, path, headers, body, query
                    )
                except Exception as exc:
                    # Last resort: an unanticipated bug must answer 500,
                    # not drop the connection with a logged traceback.
                    self.on_request_error()
                    status, extra = 500, {}
                    payload = error_payload(
                        f"internal error: {exc}"
                    )
                keep_alive = await self._write_response(
                    writer, status, payload, extra, keep_alive
                )
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
        ):
            pass  # client went away mid-request; nothing to answer
        except BadRequest as exc:
            self.on_request_error()
            try:
                await self._write_response(
                    writer,
                    exc.status,
                    error_payload(str(exc)),
                    {},
                    keep_alive=False,
                )
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes, str]]:
        """One parsed request, or None on clean end-of-stream."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean close between requests
            raise
        except asyncio.LimitOverrunError:
            raise BadRequest("request head too large", 413)
        if len(head) > MAX_HEADER_BYTES:
            raise BadRequest("request head too large", 413)
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise BadRequest(f"malformed request line: {lines[0]!r}")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise BadRequest(f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
            if length < 0:
                raise ValueError
        except ValueError:
            raise BadRequest(f"bad Content-Length: {length_text!r}")
        if length > MAX_BODY_BYTES:
            raise BadRequest("request body too large", 413)
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        return method, path, headers, body, query

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Body,
        extra_headers: Dict[str, str],
        keep_alive: bool,
    ) -> bool:
        """Write one response; returns whether the connection may
        continue serving requests (streamed responses always end it).
        """
        reason = REASONS.get(status, "Unknown")
        if isinstance(payload, StreamBody):
            headers = [
                f"HTTP/1.1 {status} {reason}",
                f"Content-Type: {payload.content_type}",
                "Cache-Control: no-store",
                "Connection: close",
            ]
            headers += [
                f"{name}: {value}"
                for name, value in extra_headers.items()
            ]
            writer.write(
                "\r\n".join(headers).encode("latin-1") + b"\r\n\r\n"
            )
            await writer.drain()
            chunks = payload.chunks
            try:
                async for chunk in chunks:
                    if isinstance(chunk, str):
                        chunk = chunk.encode("utf-8")
                    writer.write(chunk)
                    await writer.drain()
            finally:
                aclose = getattr(chunks, "aclose", None)
                if aclose is not None:
                    await aclose()
            return False
        if isinstance(payload, (bytes, bytearray)):
            body = bytes(payload)
        else:
            body = encode_json(payload)
        headers = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        headers += [
            f"{name}: {value}" for name, value in extra_headers.items()
        ]
        writer.write(
            "\r\n".join(headers).encode("latin-1") + b"\r\n\r\n" + body
        )
        await writer.drain()
        return keep_alive
