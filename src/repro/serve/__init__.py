"""Async scheduling service over the batch engine.

``repro serve`` turns the :class:`~repro.engine.batch.BatchEngine`
into a long-lived JSON-over-HTTP service for online scheduling
traffic: requests are validated into
:class:`~repro.engine.job.JobSpec`s, duplicate in-flight requests
coalesce onto one computation, unique ones micro-batch into the
engine, and a bounded queue sheds overload with 429s instead of
queueing without bound.

Quickstart (server)::

    repro serve --port 8080 --workers 4 --cache-dir .serve-cache

Quickstart (client)::

    from repro.serve.client import ServeClient

    client = ServeClient(port=8080)
    client.wait_ready()
    result = client.schedule("HAL", resources="2+/-,2*",
                             algorithm="meta2", artifacts=True)

Modules: :mod:`~repro.serve.protocol` (request/response schema),
:mod:`~repro.serve.coalescer` (in-flight coalescing + micro-batching),
:mod:`~repro.serve.metrics` (the ``/metrics`` counters),
:mod:`~repro.serve.http` (the HTTP/1.1 transport core, shared with the
:mod:`repro.dispatch` router),
:mod:`~repro.serve.server` (the asyncio HTTP front end),
:mod:`~repro.serve.client` (the blocking helper used by tests and CI).

To scale past one process, front several ``repro serve`` replicas with
``repro dispatch`` (see :mod:`repro.dispatch`).
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.coalescer import RequestCoalescer
from repro.serve.http import HttpServerCore
from repro.serve.metrics import ServiceMetrics
from repro.serve.protocol import (
    ProtocolError,
    ScheduleRequest,
    parse_request,
    response_payload,
)
from repro.serve.server import ScheduleServer, run_server

__all__ = [
    "HttpServerCore",
    "ProtocolError",
    "RequestCoalescer",
    "ScheduleRequest",
    "ScheduleServer",
    "ServeClient",
    "ServeError",
    "ServiceMetrics",
    "parse_request",
    "response_payload",
    "run_server",
]
