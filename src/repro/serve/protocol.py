"""Request/response schema for the scheduling service.

One endpoint does work — ``POST /schedule`` — and its body is a JSON
object::

    {
      "graph": "HAL",                  # registry name, or an inline
                                       # repro-dfg-v1 document (dict)
      "resources": "2+/-,2*",          # optional, paper notation
      "algorithm": "meta2",            # optional, id or alias
      "artifacts": false,              # optional: include the full
                                       # schedule artifact in the body
      "gaps": false,                   # optional: include the
                                       # optimality gap (small graphs)
      "windows": {"n3": [2, 5]},       # optional: per-op [lo, hi]
                                       # start-window pins (only on
                                       # window-capable algorithms)
      "budget": {"nodes": 100000},     # optional: search budget
                                       # (nodes and/or deadline_ms;
                                       # only on budget-capable
                                       # algorithms like bnb-anytime)
      "scenario": {"mode": "memory",   # optional: constraint scenario
                   "banks": 2,         # ("memory" | "io" |
                   "ports": 2},        # "reliability"; see
                                       # repro.engine.scenario)
      "io_schedule": {"in1": 0}        # optional sugar: op -> step
                                       # protocol pins, shorthand for
                                       # an "io" scenario (mutually
                                       # exclusive with "scenario")
    }

Validation is strict: unknown top-level keys, wrong field types,
unknown benchmark/algorithm names, and malformed inline graphs all
raise :class:`ProtocolError`, which the server turns into a 400 with
the message in the body — never a 500.

Response bodies are canonical JSON (sorted keys, tight separators)
built from :meth:`~repro.engine.job.JobResult.public_dict`, which
excludes the volatile fields (``runtime_s``, ``cached``).  The same
request body therefore always yields a byte-identical response,
whether the result was computed fresh, coalesced onto an in-flight
computation, or served from the cache — those distinctions travel in
the ``X-Repro-Source`` response header.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict

from repro.engine.job import JobResult, JobSpec
from repro.errors import ReproError
from repro.graphs.registry import graph_names
from repro.ir.dfg import DataFlowGraph
from repro.ir.serialize import dfg_from_dict

RESPONSE_FORMAT = "repro-serve-v1"

DEFAULT_RESOURCES = "2+/-,2*"
DEFAULT_ALGORITHM = "threaded(meta2)"

_REQUEST_FIELDS = frozenset(
    {
        "graph",
        "resources",
        "algorithm",
        "artifacts",
        "gaps",
        "windows",
        "budget",
        "scenario",
        "io_schedule",
    }
)


class ProtocolError(ReproError):
    """A request the service must refuse, with its HTTP status."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


@dataclass(frozen=True)
class ScheduleRequest:
    """A validated ``POST /schedule`` body: the job plus shaping flags.

    ``spec`` is hashable, so the coalescer keys in-flight computations
    on it directly; two requests that differ only in ``artifacts`` /
    ``gaps`` coalesce onto the same computation and are shaped apart at
    response time.
    """

    spec: JobSpec
    artifacts: bool = False
    gaps: bool = False


def _parse_graph(value: Any):
    if isinstance(value, str):
        name = value.upper()
        # Scale-tier names resolve too: serving one big registry job
        # is legal (if unwise); only *enumeration* excludes them.
        known = graph_names(include_scale=True)
        if name not in known:
            raise ProtocolError(
                f"unknown benchmark {value!r}; known: {', '.join(known)}"
            )
        return name
    if isinstance(value, dict):
        try:
            return dfg_from_dict(value)
        except ReproError as exc:
            raise ProtocolError(f"bad inline graph: {exc}")
    raise ProtocolError(
        "field 'graph' must be a registry benchmark name or an inline "
        f"repro-dfg-v1 object, got {type(value).__name__}"
    )


def _parse_windows(value: Any) -> Dict[str, tuple]:
    """Validate the optional per-op window object strictly.

    Shape errors here are the client's fault and must answer 400 —
    semantic errors (unknown op for the graph, an algorithm without
    window support) are caught by :class:`JobSpec` / the engine and
    reported the same way.
    """
    if not isinstance(value, dict):
        raise ProtocolError(
            f"field 'windows' must be an object mapping op ids to "
            f"[lo, hi] pairs, got {type(value).__name__}"
        )
    windows: Dict[str, tuple] = {}
    for op, bounds in value.items():
        if not isinstance(bounds, (list, tuple)) or len(bounds) != 2:
            raise ProtocolError(
                f"window for {op!r} must be a [lo, hi] pair, "
                f"got {bounds!r}"
            )
        lo, hi = bounds
        if (
            isinstance(lo, bool)
            or isinstance(hi, bool)
            or not isinstance(lo, int)
            or not isinstance(hi, int)
        ):
            raise ProtocolError(
                f"window bounds for {op!r} must be integers, "
                f"got {bounds!r}"
            )
        if lo < 0 or lo > hi:
            raise ProtocolError(
                f"window for {op!r} must satisfy 0 <= lo <= hi, "
                f"got [{lo}, {hi}]"
            )
        windows[op] = (lo, hi)
    return windows


def _parse_scenario(value: Any) -> Dict[str, Any]:
    """Validate the optional scenario object's *shape* strictly.

    The protocol layer checks only what makes the object well-formed
    as a request field: a JSON object with a string ``mode``.  Field
    names, value types, and mode/algorithm compatibility are validated
    by :func:`repro.engine.scenario.normalize_scenario` inside
    :meth:`JobSpec.make` — its errors also answer 400, never 500.
    """
    if not isinstance(value, dict):
        raise ProtocolError(
            f"field 'scenario' must be an object with a 'mode' key, "
            f"got {type(value).__name__}"
        )
    mode = value.get("mode")
    if not isinstance(mode, str):
        raise ProtocolError(
            f"scenario 'mode' must be a string "
            f"('memory', 'io', or 'reliability'), got {mode!r}"
        )
    return value


def _parse_io_schedule(value: Any) -> Dict[str, Any]:
    """Lower the ``io_schedule`` sugar into an ``io`` scenario.

    ``{"op": step, ...}`` with non-negative integer steps; the
    equivalent of ``{"scenario": {"mode": "io", "pins": ...}}``.
    """
    if not isinstance(value, dict):
        raise ProtocolError(
            f"field 'io_schedule' must be an object mapping op ids to "
            f"integer steps, got {type(value).__name__}"
        )
    pins: Dict[str, int] = {}
    for op, step in value.items():
        if isinstance(step, bool) or not isinstance(step, int):
            raise ProtocolError(
                f"io_schedule step for {op!r} must be an integer, "
                f"got {step!r}"
            )
        if step < 0:
            raise ProtocolError(
                f"io_schedule step for {op!r} must be >= 0, got {step}"
            )
        pins[op] = step
    return {"mode": "io", "pins": pins}


def _parse_flag(data: Dict[str, Any], field: str) -> bool:
    value = data.get(field, False)
    if not isinstance(value, bool):
        raise ProtocolError(
            f"field {field!r} must be a boolean, got {value!r}"
        )
    return value


def parse_request(body: bytes) -> ScheduleRequest:
    """Validate a ``POST /schedule`` body into a :class:`ScheduleRequest`.

    Raises :class:`ProtocolError` (status 400) on any malformed input.
    """
    try:
        data = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}")
    if not isinstance(data, dict):
        raise ProtocolError(
            f"request body must be a JSON object, got "
            f"{type(data).__name__}"
        )
    unknown = sorted(set(data) - _REQUEST_FIELDS)
    if unknown:
        raise ProtocolError(
            f"unknown request field(s): {', '.join(unknown)}; "
            f"known: {', '.join(sorted(_REQUEST_FIELDS))}"
        )
    if "graph" not in data:
        raise ProtocolError("field 'graph' is required")

    graph = _parse_graph(data["graph"])

    resources = data.get("resources", DEFAULT_RESOURCES)
    if not isinstance(resources, str):
        raise ProtocolError(
            f"field 'resources' must be a string in the paper's "
            f"notation, got {type(resources).__name__}"
        )
    algorithm = data.get("algorithm", DEFAULT_ALGORITHM)
    if not isinstance(algorithm, str):
        raise ProtocolError(
            f"field 'algorithm' must be a string, got "
            f"{type(algorithm).__name__}"
        )
    artifacts = _parse_flag(data, "artifacts")
    gaps = _parse_flag(data, "gaps")
    windows = None
    if "windows" in data:
        windows = _parse_windows(data["windows"])
        if isinstance(graph, DataFlowGraph):
            # Inline graphs are in hand; refuse dangling pins now.
            # Registry jobs defer the membership check to the engine,
            # which reports it as a structured per-job failure.
            for op in windows:
                if op not in graph:
                    raise ProtocolError(
                        f"window references unknown op {op!r} in the "
                        f"inline graph"
                    )
    budget = None
    if "budget" in data:
        budget = data["budget"]
        if not isinstance(budget, dict):
            raise ProtocolError(
                f"field 'budget' must be an object with 'nodes' and/or "
                f"'deadline_ms', got {type(budget).__name__}"
            )
    scenario = None
    if "scenario" in data and "io_schedule" in data:
        raise ProtocolError(
            "fields 'scenario' and 'io_schedule' are mutually "
            "exclusive: 'io_schedule' is shorthand for an 'io' scenario"
        )
    if "scenario" in data:
        scenario = _parse_scenario(data["scenario"])
    elif "io_schedule" in data:
        scenario = _parse_io_schedule(data["io_schedule"])
    if scenario is not None and isinstance(graph, DataFlowGraph):
        # Same policy as windows: pins/targets into an inline graph
        # are in hand, so dangling references are refused now instead
        # of as a per-job structured failure.
        pins = scenario.get("pins")
        ops = scenario.get("ops")
        referenced = list(pins) if isinstance(pins, dict) else []
        referenced += list(ops) if isinstance(ops, (list, tuple)) else []
        for op in referenced:
            if isinstance(op, str) and op not in graph:
                raise ProtocolError(
                    f"scenario references unknown op {op!r} in the "
                    f"inline graph"
                )
    try:
        # JobSpec.make runs the resource, algorithm, window, budget,
        # and scenario validation itself (ResourceSet.parse /
        # canonical_algorithm / _normalize_windows /
        # _normalize_budget / normalize_scenario); one pass, one
        # place for the rules to live.
        spec = JobSpec.make(
            graph,
            resources,
            algorithm,
            windows=windows,
            budget=budget,
            scenario=scenario,
        )
    except ReproError as exc:
        raise ProtocolError(str(exc))

    return ScheduleRequest(spec=spec, artifacts=artifacts, gaps=gaps)


def response_payload(
    result: JobResult, request: ScheduleRequest
) -> Dict[str, Any]:
    """Shape an engine result to the request's flags.

    The engine behind the service always computes rich results (full
    artifact, gap where eligible) so any flag combination coalesces and
    caches together; here the payloads the request did not ask for are
    dropped.  ``gap`` stays ``null`` when requested on a graph too
    large for the exact comparator.
    """
    data = result.public_dict()
    if not request.artifacts:
        del data["artifact"]
    if not request.gaps:
        del data["gap"]
    return {"format": RESPONSE_FORMAT, **data}


def encode_json(payload: Dict[str, Any]) -> bytes:
    """Canonical JSON bytes: sorted keys, tight separators, UTF-8."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def error_payload(message: str) -> Dict[str, Any]:
    return {"error": message}


def source_of(result: JobResult, coalesced: bool) -> str:
    """The ``X-Repro-Source`` header value for a served result."""
    if coalesced:
        return "coalesced"
    return "cache" if result.cached else "computed"


def decode_response(body: bytes) -> Dict[str, Any]:
    """Parse a response body (client-side helper)."""
    return json.loads(body.decode("utf-8"))
