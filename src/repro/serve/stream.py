"""Live improvement streams: ``GET /schedule/stream`` as SSE.

One improver run per canonical cache key, however many clients watch:
the server keeps an :class:`ImproveTask` registry, a late subscriber
replays the task's event history before going live, and a stream
request for a key whose improver is already running simply attaches.
The event dicts come straight from
:meth:`repro.scheduling.bnb.AnytimeBnB.status_event` — ``incumbent``
lengths are monotone non-increasing within a task, ``bound`` events
only raise the lower bound, and the stream ends with exactly one
terminal event: ``optimal`` (proof) or ``exhausted`` (budget expired).

The wire format is standard server-sent events, one frame per event::

    event: incumbent
    data: {"bound":6,"length":7,...}

so ``curl -N .../schedule/stream?graph=HAL`` is a usable client.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, List, Optional, Set

__all__ = ["DEFAULT_STREAM_NODES", "ImproveTask", "sse_frame"]

#: Node budget a stream request gets when it names none — enough to
#: prove every tractable registry graph while bounding the CPU one
#: request can claim (the improver checkpoints, so the next request
#: resumes where this one stopped).
DEFAULT_STREAM_NODES = 500_000


def sse_frame(event: Dict[str, Any]) -> str:
    """One server-sent-events frame for an improver event dict."""
    data = json.dumps(event, sort_keys=True, separators=(",", ":"))
    return f"event: {event.get('type', 'message')}\ndata: {data}\n\n"


class ImproveTask:
    """One running improver, fanned out to any number of subscribers.

    Lives on the server's event loop: ``broadcast``/``finish`` must be
    called from the loop thread (the improver's worker thread gets
    there via ``call_soon_threadsafe``).  The event history is kept so
    a subscriber attaching mid-run still sees the full monotone
    incumbent sequence from the seed on.
    """

    def __init__(self, key: str):
        self.key = key
        self.history: List[Dict[str, Any]] = []
        self.queues: Set[asyncio.Queue] = set()
        self.done = False

    def subscribe(self) -> asyncio.Queue:
        """A queue that yields history, then live events, then None."""
        queue: asyncio.Queue = asyncio.Queue()
        for event in self.history:
            queue.put_nowait(event)
        if self.done:
            queue.put_nowait(None)
        else:
            self.queues.add(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        self.queues.discard(queue)

    def broadcast(self, event: Dict[str, Any]) -> None:
        self.history.append(event)
        for queue in self.queues:
            queue.put_nowait(event)

    def finish(self) -> None:
        """Mark the run over and release every live subscriber."""
        self.done = True
        for queue in self.queues:
            queue.put_nowait(None)
        self.queues.clear()

    @property
    def terminal(self) -> Optional[Dict[str, Any]]:
        """The terminal event, once the run is over."""
        if self.history and self.history[-1].get("type") in (
            "optimal",
            "exhausted",
            "error",
        ):
            return self.history[-1]
        return None
