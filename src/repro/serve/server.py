"""The asyncio JSON-over-HTTP scheduling service.

A deliberately small, dependency-free HTTP/1.1 server — the transport
lives in :class:`~repro.serve.http.HttpServerCore`, shared with the
multi-replica dispatcher — exposing three endpoints:

``POST /schedule``
    Validate the body (see :mod:`repro.serve.protocol`), coalesce it
    onto any identical in-flight computation, micro-batch it into the
    shared :class:`~repro.engine.batch.BatchEngine`, and answer with
    the canonical result JSON.  Volatile provenance travels in
    headers: ``X-Repro-Source: computed|coalesced|cache``.  Constraint
    scenarios (``scenario`` / ``io_schedule`` request fields, see
    :mod:`repro.engine.scenario`) ride the same path: they are part of
    the spec, hence of the cache key, and fresh scenario computes bump
    the per-mode ``scenario_*_jobs`` counters on ``/metrics``.
``GET /healthz``
    Liveness plus a tiny status summary.
``GET /metrics``
    The :class:`~repro.serve.metrics.ServiceMetrics` snapshot (peer
    store counters merged in when a cluster tier is configured).
``GET /cache/<key>`` / ``POST /cache/<key>``
    The cluster tier's wire surface (see :mod:`repro.store`): GET
    serves this replica's cache entry for an exact engine cache key,
    POST installs a peer-published entry.  Both are stats-free on the
    schedule path — a peer probing never distorts hit/miss accounting.

Replicas started with ``--peer`` wrap their cache in a
:class:`~repro.store.ClusterStore`: local misses peer-fetch before
computing, fresh computes publish to ring successors, and graceful
shutdown flushes the async publisher between the request drain and the
engine teardown — so a SIGTERM'd replica's results survive on its
peers.

Overload: at most ``max_queue`` schedule requests may be in flight;
beyond that the server answers 429 with a ``Retry-After`` hint rather
than queueing without bound.  Shutdown is graceful: the listener
closes first, in-flight work drains (bounded by ``drain_timeout_s``),
then the engine's worker pool goes down.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, Iterable, Optional, Tuple

from repro import faultlab
from repro.engine.batch import BatchEngine
from repro.engine.cache import _is_key
from repro.errors import ReproError
from repro.improve import Improver
from repro.serve import protocol
from repro.store import (
    DEFAULT_PEER_TIMEOUT_S,
    ClusterStore,
    PeerError,
    parse_entry,
)
from repro.serve.coalescer import (
    DEFAULT_BATCH_WINDOW_MS,
    DEFAULT_MAX_BATCH,
    RequestCoalescer,
)
from repro.serve.http import (
    MAX_BODY_BYTES,
    MAX_HEADER_BYTES,
    Body,
    HttpServerCore,
    StreamBody,
    parse_query,
)
from repro.serve.metrics import ServiceMetrics
from repro.serve.stream import DEFAULT_STREAM_NODES, ImproveTask, sse_frame

__all__ = [
    "DEFAULT_DRAIN_TIMEOUT_S",
    "DEFAULT_MAX_QUEUE",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "ScheduleServer",
    "metrics_snapshot",
    "run_server",
]

#: Admission bound: schedule requests in flight before 429s start.
DEFAULT_MAX_QUEUE = 256

#: How long a graceful shutdown waits for in-flight work.
DEFAULT_DRAIN_TIMEOUT_S = 10.0


class ScheduleServer(HttpServerCore):
    """One serving process: listener + coalescer + batch engine."""

    def __init__(
        self,
        engine: Optional[BatchEngine] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        max_queue: int = DEFAULT_MAX_QUEUE,
        max_batch: int = DEFAULT_MAX_BATCH,
        batch_window_ms: float = DEFAULT_BATCH_WINDOW_MS,
        drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
        max_cache_entries: Optional[int] = None,
        peers: Iterable[str] = (),
        peer_timeout_s: float = DEFAULT_PEER_TIMEOUT_S,
        publish: str = "async",
        publish_fanout: int = 1,
    ):
        super().__init__(host=host, port=port)
        peers = tuple(peers)
        if engine is not None and peers:
            raise ValueError(
                "pass `peers` only when the server builds its own "
                "engine; wrap your cache in a ClusterStore instead"
            )
        if engine is None:
            # Rich results by design: artifacts always captured, gaps
            # always computed (bounded to small graphs by the engine's
            # ops limit).  Any request flag combination then shares one
            # computation and one cache entry; responses are shaped per
            # request in the protocol layer.
            if peers:
                engine = BatchEngine(
                    workers=workers,
                    cache=ClusterStore(
                        peers,
                        cache_dir=cache_dir,
                        max_entries=max_cache_entries,
                        peer_timeout_s=peer_timeout_s,
                        publish=publish,
                        publish_fanout=publish_fanout,
                    ),
                    compute_gaps=True,
                    capture_schedules=True,
                )
            else:
                engine = BatchEngine(
                    workers=workers,
                    cache_dir=cache_dir,
                    compute_gaps=True,
                    capture_schedules=True,
                    max_cache_entries=max_cache_entries,
                )
        self.engine = engine
        self.max_queue = max_queue
        self.drain_timeout_s = drain_timeout_s
        self.metrics = ServiceMetrics()
        self.coalescer = RequestCoalescer(
            engine,
            metrics=self.metrics,
            max_batch=max_batch,
            batch_window_ms=batch_window_ms,
        )
        self._draining = False
        # Improver runs keyed by canonical cache key; a stream request
        # for a key whose improver is live attaches instead of
        # starting a second search over the same graph.
        self._improves: Dict[str, ImproveTask] = {}

    # ------------------------------------------------------------------
    # Lifecycle.

    async def start(self) -> "ScheduleServer":
        self.engine.start()
        try:
            await self.listen()
        except Exception:
            self.engine.shutdown()
            raise
        return self

    async def stop(self) -> bool:
        """Graceful drain: stop listening, finish in-flight, tear down.

        Returns True when the drain completed inside the timeout.
        """
        self._draining = True
        await self.close_listener()
        drained = await self.coalescer.drain(self.drain_timeout_s)
        self.coalescer.close()
        # Flush the cluster publisher *after* the drain (the drained
        # requests' computes enqueue publishes) and *before* the engine
        # goes down — this is what makes a SIGTERM'd replica's results
        # survive on its peers.  Runs off-loop: flush polls with sleeps.
        closer = getattr(self.engine.cache, "close", None)
        if callable(closer):
            await asyncio.get_running_loop().run_in_executor(
                None, closer
            )
        self.engine.shutdown()
        return drained

    # ------------------------------------------------------------------
    # Routing.

    def on_request_error(self) -> None:
        self.metrics.errors += 1

    async def dispatch(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        query: str = "",
    ) -> Tuple[int, Body, Dict[str, str]]:
        self.metrics.requests += 1
        if path == "/schedule/stream":
            if method != "GET":
                self.metrics.errors += 1
                return 405, protocol.error_payload(
                    "use GET /schedule/stream"
                ), {}
            return await self._handle_stream(query)
        if path == "/schedule":
            if method != "POST":
                self.metrics.errors += 1
                return 405, protocol.error_payload(
                    "use POST /schedule"
                ), {}
            return await self._handle_schedule(body)
        if path == "/healthz":
            if method != "GET":
                self.metrics.errors += 1
                return 405, protocol.error_payload("use GET /healthz"), {}
            status = 503 if self._draining else 200
            return status, {
                "status": "draining" if self._draining else "ok",
                "in_flight": self.metrics.in_flight,
                "workers": self.engine.workers,
            }, {}
        if path == "/metrics":
            if method != "GET":
                self.metrics.errors += 1
                return 405, protocol.error_payload("use GET /metrics"), {}
            return 200, self.metrics_payload(), {}
        if path.startswith("/cache/"):
            return await self._handle_cache(method, path, body)
        self.metrics.errors += 1
        return 404, protocol.error_payload(
            f"no such endpoint {path!r}; try POST /schedule, "
            "GET /healthz, GET /metrics"
        ), {}

    def metrics_payload(self) -> Dict:
        """The exact ``/metrics`` document for this replica."""
        snapshot = self.metrics.snapshot()
        snapshot["engine_cache"] = self.engine.cache.stats()
        peer_stats = getattr(self.engine.cache, "peer_stats", None)
        if callable(peer_stats):
            # Top-level merge (not nested) so the dispatcher's
            # cluster-wide aggregation sums them like any counter.
            snapshot.update(peer_stats())
        crash_stats = getattr(self.engine, "crash_stats", None)
        if callable(crash_stats):
            # Same top-level merge for worker-crash recovery counters.
            snapshot.update(crash_stats())
        return snapshot

    async def _handle_cache(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Body, Dict[str, str]]:
        """The cluster tier's wire surface, one key per request.

        Engine calls run in the default executor: they take the
        engine's submission lock, and a peer probe must not stall the
        event loop behind a long cache resolution.
        """
        key = path[len("/cache/"):]
        if not _is_key(key):
            self.metrics.errors += 1
            return 400, protocol.error_payload(
                "cache keys are 64-char sha256 hexdigests"
            ), {}
        loop = asyncio.get_running_loop()
        if method == "GET":
            entry = await loop.run_in_executor(
                None, self.engine.entry_payload, key
            )
            if entry is None:
                return 404, protocol.error_payload(
                    f"no cache entry for key {key[:12]}..."
                ), {"X-Repro-Key": key}
            self.metrics.peer_served += 1
            return 200, entry, {"X-Repro-Key": key}
        if method == "POST":
            try:
                data = json.loads(body.decode("utf-8"))
                result = parse_entry(data, key)
            except (ValueError, UnicodeDecodeError, PeerError) as exc:
                self.metrics.errors += 1
                return 400, protocol.error_payload(
                    f"bad cache entry: {exc}"
                ), {}
            accepted = await loop.run_in_executor(
                None, self.engine.install_result, result
            )
            if not accepted:
                self.metrics.errors += 1
                return 400, protocol.error_payload(
                    "error results are never cached"
                ), {}
            self.metrics.peer_received += 1
            return 200, {"stored": True, "key": key}, {}
        self.metrics.errors += 1
        return 405, protocol.error_payload(
            "use GET or POST /cache/<key>"
        ), {}

    async def _handle_schedule(
        self, body: bytes
    ) -> Tuple[int, Body, Dict[str, str]]:
        try:
            request = protocol.parse_request(body)
        except protocol.ProtocolError as exc:
            self.metrics.errors += 1
            return exc.status, protocol.error_payload(str(exc)), {}
        if self._draining:
            self.metrics.errors += 1
            return 503, protocol.error_payload(
                "server is draining; retry against a live replica"
            ), {"Retry-After": "1"}
        if self.metrics.in_flight >= self.max_queue:
            self.metrics.rejected += 1
            return 429, protocol.error_payload(
                f"queue full ({self.max_queue} requests in flight); "
                "retry later"
            ), {"Retry-After": "1"}

        self.metrics.schedule_requests += 1
        self.metrics.in_flight += 1
        started = time.monotonic()
        try:
            if faultlab.enabled():
                # Chaos harness: a "slow replica" stalls here, after
                # admission — the router's deadline/failover machinery
                # sees a wedged upstream, not a refused connection.
                lag = faultlab.replica_lag_s()
                if lag > 0:
                    await asyncio.sleep(lag)
            result, coalesced = await self.coalescer.schedule(
                request.spec
            )
        except Exception as exc:  # engine failure -> 500, not a hang
            self.metrics.errors += 1
            return 500, protocol.error_payload(
                f"scheduling failed: {exc}"
            ), {}
        finally:
            self.metrics.in_flight -= 1
            self.metrics.observe_latency(time.monotonic() - started)
        return 200, protocol.response_payload(result, request), {
            "X-Repro-Source": protocol.source_of(result, coalesced),
            "X-Repro-Key": result.key,
        }

    # ------------------------------------------------------------------
    # Live improvement streams.

    @staticmethod
    def _stream_int(params: Dict[str, str], field: str) -> Optional[int]:
        """A positive integer query parameter, or None when absent."""
        raw = params.get(field)
        if raw is None or raw == "":
            return None
        try:
            value = int(raw)
        except ValueError:
            raise protocol.ProtocolError(
                f"query parameter {field!r} must be an integer, "
                f"got {raw!r}"
            )
        if value <= 0:
            raise protocol.ProtocolError(
                f"query parameter {field!r} must be positive, got {value}"
            )
        return value

    async def _handle_stream(
        self, query: str
    ) -> Tuple[int, Body, Dict[str, str]]:
        """``GET /schedule/stream?graph=HAL[&resources=..][&nodes=..]``.

        One improver run per canonical cache key: the first stream
        request for a key starts a background run; concurrent and
        late requests attach to it (history replay makes attachment
        order invisible).  The response is a close-delimited SSE
        stream ending in exactly one terminal event.
        """
        params = parse_query(query)
        try:
            unknown = sorted(
                set(params) - {"graph", "resources", "nodes", "deadline_ms"}
            )
            if unknown:
                raise protocol.ProtocolError(
                    f"unknown query parameter(s): {', '.join(unknown)}"
                )
            graph = params.get("graph")
            if not graph:
                raise protocol.ProtocolError(
                    "query parameter 'graph' is required"
                )
            resources = params.get(
                "resources", protocol.DEFAULT_RESOURCES
            )
            nodes = self._stream_int(params, "nodes")
            deadline_ms = self._stream_int(params, "deadline_ms")
        except protocol.ProtocolError as exc:
            self.metrics.errors += 1
            return exc.status, protocol.error_payload(str(exc)), {}
        if nodes is None and deadline_ms is None:
            # An unbudgeted stream still terminates: the default node
            # budget bounds one request's CPU, and the checkpoint left
            # behind lets the next request continue the search.
            nodes = DEFAULT_STREAM_NODES
        if self._draining:
            self.metrics.errors += 1
            return 503, protocol.error_payload(
                "server is draining; retry against a live replica"
            ), {"Retry-After": "1"}

        loop = asyncio.get_running_loop()
        try:
            # Construction seeds from the cache (disk reads, graph
            # build) — executor, not the loop thread.
            improver = await loop.run_in_executor(
                None, lambda: Improver(self.engine, graph, resources)
            )
        except ReproError as exc:
            self.metrics.errors += 1
            return 400, protocol.error_payload(str(exc)), {}

        task = self._improves.get(improver.key)
        if task is None or task.done:
            task = ImproveTask(improver.key)
            self._improves[improver.key] = task
            self.metrics.improve_jobs += 1
            # Every subscriber's stream opens with the current
            # incumbent, so a client knows the baseline its
            # improvements are relative to.
            task.broadcast(improver.solver.status_event("incumbent"))
            asyncio.ensure_future(
                self._drive(task, improver, nodes, deadline_ms)
            )
        queue = task.subscribe()

        async def frames():
            self.metrics.sse_clients += 1
            try:
                while True:
                    event = await queue.get()
                    if event is None:
                        return
                    yield sse_frame(event)
            finally:
                self.metrics.sse_clients -= 1
                task.unsubscribe(queue)

        return 200, StreamBody(frames()), {"X-Repro-Key": improver.key}

    async def _drive(
        self,
        task: ImproveTask,
        improver: Improver,
        nodes: Optional[int],
        deadline_ms: Optional[int],
    ) -> None:
        """Run one improver to its budget, fanning events to ``task``."""
        loop = asyncio.get_running_loop()

        def forward(event: Dict) -> None:
            # Called from the executor thread; marshal onto the loop.
            # A loop torn down mid-run just drops the event.
            try:
                loop.call_soon_threadsafe(task.broadcast, dict(event))
            except RuntimeError:
                pass

        try:
            summary = await loop.run_in_executor(
                None,
                lambda: improver.run(
                    nodes=nodes,
                    deadline_ms=deadline_ms,
                    on_event=forward,
                ),
            )
        except Exception as exc:
            self.metrics.errors += 1
            task.broadcast({"type": "error", "error": str(exc)})
        else:
            self.metrics.improved_entries += improver.rewrites
            if summary["proved"]:
                self.metrics.proved_optimal += 1
        finally:
            task.finish()


async def _run_until_signal(server: ScheduleServer) -> bool:
    """Serve until SIGINT/SIGTERM, then drain; True = drained clean."""
    import signal

    loop = asyncio.get_running_loop()
    stop_event = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop_event.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix event loops
    await server.start()
    print(
        f"repro serve: listening on http://{server.host}:{server.port} "
        f"(workers={server.engine.workers}, "
        f"max_queue={server.max_queue})",
        flush=True,
    )
    serve_task = asyncio.ensure_future(server.serve_forever())
    await stop_event.wait()
    print("repro serve: draining...", flush=True)
    serve_task.cancel()
    try:
        await serve_task
    except (asyncio.CancelledError, Exception):
        pass
    drained = await server.stop()
    print(
        "repro serve: shutdown "
        + ("clean" if drained else "timed out waiting for in-flight jobs"),
        flush=True,
    )
    return drained


def run_server(**kwargs) -> int:
    """Blocking entry point used by ``repro serve``.

    Exit codes: 0 = served and drained clean; 1 = the graceful drain
    timed out and in-flight jobs were abandoned (orchestrators can
    tell lost work apart from a clean stop without scraping logs).
    """
    server = ScheduleServer(**kwargs)
    try:
        drained = asyncio.run(_run_until_signal(server))
    except KeyboardInterrupt:
        return 0
    return 0 if drained else 1


def metrics_snapshot(server: ScheduleServer) -> Dict:
    """The exact ``/metrics`` document (handy for in-process tests)."""
    return json.loads(json.dumps(server.metrics_payload()))
