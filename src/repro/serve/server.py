"""The asyncio JSON-over-HTTP scheduling service.

A deliberately small, dependency-free HTTP/1.1 server on
``asyncio.start_server`` — no frameworks, no threads per connection —
exposing three endpoints:

``POST /schedule``
    Validate the body (see :mod:`repro.serve.protocol`), coalesce it
    onto any identical in-flight computation, micro-batch it into the
    shared :class:`~repro.engine.batch.BatchEngine`, and answer with
    the canonical result JSON.  Volatile provenance travels in
    headers: ``X-Repro-Source: computed|coalesced|cache``.
``GET /healthz``
    Liveness plus a tiny status summary.
``GET /metrics``
    The :class:`~repro.serve.metrics.ServiceMetrics` snapshot.

Overload: at most ``max_queue`` schedule requests may be in flight;
beyond that the server answers 429 with a ``Retry-After`` hint rather
than queueing without bound.  Shutdown is graceful: the listener
closes first, in-flight work drains (bounded by ``drain_timeout_s``),
then the engine's worker pool goes down.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, Optional, Tuple

from repro.engine.batch import BatchEngine
from repro.errors import ReproError
from repro.serve import protocol
from repro.serve.coalescer import (
    DEFAULT_BATCH_WINDOW_MS,
    DEFAULT_MAX_BATCH,
    RequestCoalescer,
)
from repro.serve.metrics import ServiceMetrics

#: Admission bound: schedule requests in flight before 429s start.
DEFAULT_MAX_QUEUE = 256

#: Hard cap on request bodies (inline graphs get large, not huge).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Hard cap on the request line + headers block.
MAX_HEADER_BYTES = 64 * 1024

#: How long a graceful shutdown waits for in-flight work.
DEFAULT_DRAIN_TIMEOUT_S = 10.0

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ScheduleServer:
    """One serving process: listener + coalescer + batch engine."""

    def __init__(
        self,
        engine: Optional[BatchEngine] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        cache_dir: Optional[str] = None,
        max_queue: int = DEFAULT_MAX_QUEUE,
        max_batch: int = DEFAULT_MAX_BATCH,
        batch_window_ms: float = DEFAULT_BATCH_WINDOW_MS,
        drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
        max_cache_entries: Optional[int] = None,
    ):
        if engine is None:
            # Rich results by design: artifacts always captured, gaps
            # always computed (bounded to small graphs by the engine's
            # ops limit).  Any request flag combination then shares one
            # computation and one cache entry; responses are shaped per
            # request in the protocol layer.
            engine = BatchEngine(
                workers=workers,
                cache_dir=cache_dir,
                compute_gaps=True,
                capture_schedules=True,
                max_cache_entries=max_cache_entries,
            )
        self.engine = engine
        self.host = host
        self._requested_port = port
        self.max_queue = max_queue
        self.drain_timeout_s = drain_timeout_s
        self.metrics = ServiceMetrics()
        self.coalescer = RequestCoalescer(
            engine,
            metrics=self.metrics,
            max_batch=max_batch,
            batch_window_ms=batch_window_ms,
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._bound_port: Optional[int] = None
        self._draining = False

    # ------------------------------------------------------------------
    # Lifecycle.

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._bound_port is not None:
            return self._bound_port
        return self._requested_port

    async def start(self) -> "ScheduleServer":
        self.engine.start()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, self.host, self._requested_port
            )
        except OSError as exc:
            # Port taken / privileged / bad host: a clean ReproError
            # (CLI exit code 2), never a traceback.
            self.engine.shutdown()
            raise ReproError(
                f"cannot listen on {self.host}:{self._requested_port}: "
                f"{exc}"
            )
        self._bound_port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> bool:
        """Graceful drain: stop listening, finish in-flight, tear down.

        Returns True when the drain completed inside the timeout.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        drained = await self.coalescer.drain(self.drain_timeout_s)
        self.coalescer.close()
        self.engine.shutdown()
        return drained

    # ------------------------------------------------------------------
    # HTTP plumbing.

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                keep_alive = (
                    headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                try:
                    status, payload, extra = await self._dispatch(
                        method, path, body
                    )
                except Exception as exc:
                    # Last resort: an unanticipated bug must answer 500,
                    # not drop the connection with a logged traceback.
                    self.metrics.errors += 1
                    status, extra = 500, {}
                    payload = protocol.error_payload(
                        f"internal error: {exc}"
                    )
                await self._write_response(
                    writer, status, payload, extra, keep_alive
                )
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
            ConnectionError,
        ):
            pass  # client went away mid-request; nothing to answer
        except _BadRequest as exc:
            try:
                await self._write_response(
                    writer,
                    exc.status,
                    protocol.error_payload(str(exc)),
                    {},
                    keep_alive=False,
                )
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """One parsed request, or None on clean end-of-stream."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError as exc:
            if not exc.partial:
                return None  # clean close between requests
            raise
        except asyncio.LimitOverrunError:
            raise _BadRequest("request head too large", 413)
        if len(head) > MAX_HEADER_BYTES:
            raise _BadRequest("request head too large", 413)
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(f"malformed request line: {lines[0]!r}")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                raise _BadRequest(f"malformed header line: {line!r}")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
            if length < 0:
                raise ValueError
        except ValueError:
            raise _BadRequest(
                f"bad Content-Length: {length_text!r}"
            )
        if length > MAX_BODY_BYTES:
            raise _BadRequest("request body too large", 413)
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method, path, headers, body

    async def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict,
        extra_headers: Dict[str, str],
        keep_alive: bool,
    ) -> None:
        body = protocol.encode_json(payload)
        reason = _REASONS.get(status, "Unknown")
        headers = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        headers += [
            f"{name}: {value}" for name, value in extra_headers.items()
        ]
        writer.write(
            "\r\n".join(headers).encode("latin-1") + b"\r\n\r\n" + body
        )
        await writer.drain()

    # ------------------------------------------------------------------
    # Routing.

    async def _dispatch(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Dict, Dict[str, str]]:
        self.metrics.requests += 1
        if path == "/schedule":
            if method != "POST":
                self.metrics.errors += 1
                return 405, protocol.error_payload(
                    "use POST /schedule"
                ), {}
            return await self._handle_schedule(body)
        if path == "/healthz":
            if method != "GET":
                self.metrics.errors += 1
                return 405, protocol.error_payload("use GET /healthz"), {}
            status = 503 if self._draining else 200
            return status, {
                "status": "draining" if self._draining else "ok",
                "in_flight": self.metrics.in_flight,
                "workers": self.engine.workers,
            }, {}
        if path == "/metrics":
            if method != "GET":
                self.metrics.errors += 1
                return 405, protocol.error_payload("use GET /metrics"), {}
            snapshot = self.metrics.snapshot()
            snapshot["engine_cache"] = self.engine.cache.stats()
            return 200, snapshot, {}
        self.metrics.errors += 1
        return 404, protocol.error_payload(
            f"no such endpoint {path!r}; try POST /schedule, "
            "GET /healthz, GET /metrics"
        ), {}

    async def _handle_schedule(
        self, body: bytes
    ) -> Tuple[int, Dict, Dict[str, str]]:
        try:
            request = protocol.parse_request(body)
        except protocol.ProtocolError as exc:
            self.metrics.errors += 1
            return exc.status, protocol.error_payload(str(exc)), {}
        if self._draining:
            self.metrics.errors += 1
            return 503, protocol.error_payload(
                "server is draining; retry against a live replica"
            ), {"Retry-After": "1"}
        if self.metrics.in_flight >= self.max_queue:
            self.metrics.rejected += 1
            return 429, protocol.error_payload(
                f"queue full ({self.max_queue} requests in flight); "
                "retry later"
            ), {"Retry-After": "1"}

        self.metrics.schedule_requests += 1
        self.metrics.in_flight += 1
        started = time.monotonic()
        try:
            result, coalesced = await self.coalescer.schedule(
                request.spec
            )
        except Exception as exc:  # engine failure -> 500, not a hang
            self.metrics.errors += 1
            return 500, protocol.error_payload(
                f"scheduling failed: {exc}"
            ), {}
        finally:
            self.metrics.in_flight -= 1
            self.metrics.observe_latency(time.monotonic() - started)
        return 200, protocol.response_payload(result, request), {
            "X-Repro-Source": protocol.source_of(result, coalesced),
            "X-Repro-Key": result.key,
        }


class _BadRequest(Exception):
    """Transport-level refusal (malformed HTTP, oversized payload)."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


async def _run_until_signal(server: ScheduleServer) -> bool:
    """Serve until SIGINT/SIGTERM, then drain; True = drained clean."""
    import signal

    loop = asyncio.get_running_loop()
    stop_event = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop_event.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix event loops
    await server.start()
    print(
        f"repro serve: listening on http://{server.host}:{server.port} "
        f"(workers={server.engine.workers}, "
        f"max_queue={server.max_queue})",
        flush=True,
    )
    serve_task = asyncio.ensure_future(server.serve_forever())
    await stop_event.wait()
    print("repro serve: draining...", flush=True)
    serve_task.cancel()
    try:
        await serve_task
    except (asyncio.CancelledError, Exception):
        pass
    drained = await server.stop()
    print(
        "repro serve: shutdown "
        + ("clean" if drained else "timed out waiting for in-flight jobs"),
        flush=True,
    )
    return drained


def run_server(**kwargs) -> int:
    """Blocking entry point used by ``repro serve``.

    Exit codes: 0 = served and drained clean; 1 = the graceful drain
    timed out and in-flight jobs were abandoned (orchestrators can
    tell lost work apart from a clean stop without scraping logs).
    """
    server = ScheduleServer(**kwargs)
    try:
        drained = asyncio.run(_run_until_signal(server))
    except KeyboardInterrupt:
        return 0
    return 0 if drained else 1


def metrics_snapshot(server: ScheduleServer) -> Dict:
    """The exact ``/metrics`` document (handy for in-process tests)."""
    snapshot = server.metrics.snapshot()
    snapshot["engine_cache"] = server.engine.cache.stats()
    return json.loads(json.dumps(snapshot))
