"""Request coalescing and micro-batching in front of the batch engine.

Online scheduling traffic is duplicate-heavy: feedback-guided iterative
flows re-query the same ``(graph, resources, algorithm)`` point many
times while exploring a design.  The coalescer exploits that twice:

* **Coalescing** — a request whose :class:`~repro.engine.job.JobSpec`
  is already in flight attaches to the existing future instead of
  submitting again, so a burst of N identical requests costs exactly
  one computation.
* **Micro-batching** — unique requests accumulate in a buffer that is
  flushed into :meth:`BatchEngine.submit` when it reaches
  ``max_batch`` jobs or when the oldest buffered request has waited
  ``batch_window_ms`` — whichever comes first.  Batching amortizes
  cache bookkeeping and keeps the engine's worker pool fed with whole
  batches instead of single jobs.

Flushes run in a thread-pool executor (``engine.submit`` is
thread-safe and blocking); multiple flushed batches may overlap there,
sharing the engine's persistent process pool.  All coalescer state is
touched only from the event loop, so there is no locking here.

A burst of identical requests resolves through one computation — the
first caller computes, the twins coalesce:

>>> import asyncio
>>> from repro.engine.batch import BatchEngine
>>> from repro.engine.job import JobSpec
>>> async def burst():
...     coalescer = RequestCoalescer(
...         BatchEngine(), batch_window_ms=1.0)
...     spec = JobSpec.make("HAL", "2+/-,2*", "list")
...     settled = await asyncio.gather(
...         *(coalescer.schedule(spec) for _ in range(3)))
...     await coalescer.drain()
...     coalescer.close()
...     return settled
>>> settled = asyncio.run(burst())
>>> sorted(coalesced for _, coalesced in settled)
[False, True, True]
>>> len({result.length for result, _ in settled})
1
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.engine.batch import BatchEngine
from repro.engine.job import JobResult, JobSpec
from repro.errors import ReproError
from repro.serve.metrics import ServiceMetrics

#: Flush when the buffer reaches this many unique jobs...
DEFAULT_MAX_BATCH = 32

#: ...or when the oldest buffered job has waited this long (ms).
DEFAULT_BATCH_WINDOW_MS = 5.0

#: Dispatch threads: how many flushed batches may block in
#: ``engine.submit`` concurrently.  Two keeps a slow batch from
#: stalling the next flush without spawning a thread herd.
DISPATCH_THREADS = 2


class RequestCoalescer:
    """Coalesce duplicate in-flight jobs, micro-batch the rest."""

    def __init__(
        self,
        engine: BatchEngine,
        metrics: Optional[ServiceMetrics] = None,
        max_batch: int = DEFAULT_MAX_BATCH,
        batch_window_ms: float = DEFAULT_BATCH_WINDOW_MS,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.engine = engine
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.max_batch = max_batch
        self.batch_window_s = max(0.0, batch_window_ms) / 1000.0
        self._inflight: Dict[JobSpec, asyncio.Future] = {}
        self._buffer: List[Tuple[JobSpec, asyncio.Future]] = []
        self._timer: Optional[asyncio.TimerHandle] = None
        self._executor = ThreadPoolExecutor(
            max_workers=DISPATCH_THREADS,
            thread_name_prefix="repro-serve-dispatch",
        )
        self._batches: set = set()

    # ------------------------------------------------------------------

    @property
    def pending_jobs(self) -> int:
        """Unique jobs admitted but not yet resolved."""
        return len(self._inflight)

    async def schedule(self, spec: JobSpec) -> Tuple[JobResult, bool]:
        """Resolve one job; returns ``(result, coalesced)``.

        ``coalesced`` is True when the request attached to a
        computation another request already had in flight.  Awaiting
        the shared future is shielded per caller, so one client
        disconnecting never cancels the computation its twins are
        still waiting on.
        """
        future = self._inflight.get(spec)
        if future is not None:
            self.metrics.coalesced += 1
            return await asyncio.shield(future), True
        future = asyncio.get_running_loop().create_future()
        self._inflight[spec] = future
        self._buffer.append((spec, future))
        self.metrics.queued_jobs += 1
        if len(self._buffer) >= self.max_batch:
            self._flush_now()
        elif self._timer is None:
            self._timer = asyncio.get_running_loop().call_later(
                self.batch_window_s, self._flush_now
            )
        return await asyncio.shield(future), False

    # ------------------------------------------------------------------

    def _flush_now(self) -> None:
        """Hand the buffered jobs to the engine (event-loop thread)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._buffer:
            return
        batch, self._buffer = self._buffer, []
        self.metrics.batches += 1
        task = asyncio.get_running_loop().create_task(
            self._run_batch(batch)
        )
        # Keep a strong reference until done (asyncio keeps tasks
        # weakly); drain() also gathers these.
        self._batches.add(task)
        task.add_done_callback(self._batches.discard)

    def _settle(self, spec: JobSpec) -> None:
        """Retire one admitted job's bookkeeping.

        Runs exactly once per buffered job, *next to* its future
        resolving — never earlier — so the ``queued_jobs`` gauge that
        ``/metrics`` reports as ``queue_depth`` counts work as
        in-flight until the moment its client can observe the result.
        """
        self._inflight.pop(spec, None)
        self.metrics.queued_jobs -= 1
        assert self.metrics.queued_jobs >= 0, (
            "queued_jobs gauge went negative: a job was settled twice"
        )

    def _fail_batch(
        self,
        batch: List[Tuple[JobSpec, asyncio.Future]],
        exc: BaseException,
    ) -> None:
        for spec, future in batch:
            self._settle(spec)
            if not future.done():
                future.set_exception(exc)

    async def _run_batch(
        self, batch: List[Tuple[JobSpec, asyncio.Future]]
    ) -> None:
        specs = [spec for spec, _ in batch]
        loop = asyncio.get_running_loop()
        try:
            results = await loop.run_in_executor(
                self._executor, self.engine.submit, specs
            )
        except Exception as exc:
            self._fail_batch(batch, exc)
            return
        except BaseException as exc:
            # Cancellation of the flush task (event-loop teardown)
            # must still settle the batch: leaked _inflight entries
            # would make every later duplicate of these specs attach
            # to a future nobody will ever resolve.
            self._fail_batch(batch, exc)
            raise
        if len(results) != len(batch):
            # zip() would silently drop the unmatched tail and leave
            # those clients awaiting futures nobody will ever resolve.
            # An engine answering the wrong shape is a contract breach;
            # fail every affected client loudly instead of hanging them.
            self._fail_batch(
                batch,
                ReproError(
                    f"engine returned {len(results)} results for a "
                    f"batch of {len(batch)} jobs; failing all "
                    f"{len(batch)} affected requests instead of "
                    "hanging the unmatched clients"
                ),
            )
            return
        for (spec, future), result in zip(batch, results):
            self._settle(spec)
            if result.cached:
                self.metrics.cache_hits += 1
            else:
                self.metrics.computed += 1
                self.metrics.record_compute(
                    result.algorithm, result.runtime_s
                )
                # Hierarchical jobs report orchestration meta in the
                # artifact; surface round/partition totals on /metrics.
                meta = (result.artifact or {}).get("meta") or {}
                if "hier_rounds" in meta:
                    self.metrics.record_hier(
                        meta["hier_rounds"],
                        meta.get("hier_partitions", 0),
                    )
                # Scenario jobs record their mode in the artifact meta
                # the same way; surface per-mode counts on /metrics.
                scenario = meta.get("scenario") or {}
                if "mode" in scenario:
                    self.metrics.record_scenario(scenario["mode"])
            if not future.done():
                future.set_result(result)

    # ------------------------------------------------------------------

    async def drain(self, timeout: Optional[float] = None) -> bool:
        """Flush the buffer and wait for every in-flight job.

        Returns True when everything resolved inside ``timeout``
        (None = wait forever).  New work arriving during the drain is
        waited on too — callers stop admission first.
        """
        deadline = (
            None
            if timeout is None
            else asyncio.get_running_loop().time() + timeout
        )
        while self._buffer or self._batches or self._inflight:
            self._flush_now()
            waiters = [
                asyncio.shield(f)
                for f in list(self._inflight.values())
            ] + [asyncio.shield(t) for t in list(self._batches)]
            if not waiters:
                break
            remaining = None
            if deadline is not None:
                remaining = deadline - asyncio.get_running_loop().time()
                if remaining <= 0:
                    return False
            done, pending = await asyncio.wait(
                waiters, timeout=remaining
            )
            for waiter in pending:
                waiter.cancel()
            if pending and deadline is not None:
                return False
        return True

    def close(self) -> None:
        """Release the dispatch threads (after :meth:`drain`)."""
        self._executor.shutdown(wait=False)
