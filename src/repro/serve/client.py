"""A small blocking client for the scheduling service.

Used by the test suite and the CI serving smoke job; also a reasonable
starting point for library users.  Pure stdlib (``http.client``), one
connection per call — the service's keep-alive path is exercised by
the protocol tests instead.

>>> client = ServeClient(port=8080)          # doctest: +SKIP
>>> client.wait_ready()                      # doctest: +SKIP
>>> client.schedule("HAL", algorithm="meta2")  # doctest: +SKIP
{'format': 'repro-serve-v1', 'graph': 'HAL', ...}

Responses expose the volatile provenance headers the service keeps
out of its byte-deterministic bodies:

>>> raw = RawResponse(status=200,
...                   headers={"x-repro-source": "cache",
...                            "x-repro-key": "ab" * 32},
...                   body=b'{"length": 17}')
>>> raw.source, raw.json()["length"]
('cache', 17)
"""

from __future__ import annotations

import http.client
import json
import socket
import time
import urllib.parse
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Union

from repro.errors import ReproError
from repro.ir.dfg import DataFlowGraph
from repro.ir.serialize import dfg_to_dict


class ServeError(ReproError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


@dataclass
class RawResponse:
    """Status, headers, and unparsed body of one exchange."""

    status: int
    headers: Dict[str, str]
    body: bytes

    @property
    def source(self) -> Optional[str]:
        """``computed`` / ``coalesced`` / ``cache`` for /schedule."""
        return self.headers.get("x-repro-source")

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8"))


class ServeClient:
    """Blocking JSON-over-HTTP client for one ``repro serve`` process."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 30.0,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
    ) -> RawResponse:
        """One HTTP exchange; transport failures raise ``OSError``."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Connection": "close"}
            if body is not None:
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            payload = response.read()
            return RawResponse(
                status=response.status,
                headers={
                    name.lower(): value
                    for name, value in response.getheaders()
                },
                body=payload,
            )
        finally:
            conn.close()

    def _checked(self, raw: RawResponse) -> Dict[str, Any]:
        if raw.status != 200:
            try:
                message = raw.json().get("error", raw.body.decode())
            except (ValueError, UnicodeDecodeError):
                message = raw.body.decode("latin-1")
            raise ServeError(raw.status, message)
        return raw.json()

    # ------------------------------------------------------------------

    def schedule_raw(
        self,
        graph: Union[str, Dict[str, Any], DataFlowGraph],
        resources: Optional[str] = None,
        algorithm: Optional[str] = None,
        artifacts: bool = False,
        gaps: bool = False,
        windows: Optional[Dict[str, Any]] = None,
        budget: Optional[Dict[str, Any]] = None,
        scenario: Optional[Dict[str, Any]] = None,
        io_schedule: Optional[Dict[str, Any]] = None,
    ) -> RawResponse:
        """``POST /schedule``; returns the raw exchange (any status).

        ``windows`` is the optional per-op ``{op: [lo, hi]}`` start-pin
        mapping of window-constrained jobs (tuples are accepted and
        serialized as JSON arrays).  ``budget`` is the optional search
        budget of budget-capable algorithms (``{"nodes": ...,
        "deadline_ms": ...}``).  ``scenario`` is the optional
        constraint-scenario document (``{"mode": "memory"|"io"|
        "reliability", ...}``); ``io_schedule`` is the ``{op: step}``
        shorthand for an ``io`` scenario — the server refuses both at
        once.  Non-dict values are sent verbatim so the server's
        strict validation stays exercisable.
        """
        if isinstance(graph, DataFlowGraph):
            graph = dfg_to_dict(graph)
        body: Dict[str, Any] = {"graph": graph}
        if resources is not None:
            body["resources"] = resources
        if algorithm is not None:
            body["algorithm"] = algorithm
        if artifacts:
            body["artifacts"] = True
        if gaps:
            body["gaps"] = True
        if windows:
            if isinstance(windows, dict):
                body["windows"] = {
                    op: list(bounds) if isinstance(bounds, (list, tuple))
                    else bounds
                    for op, bounds in windows.items()
                }
            else:
                body["windows"] = windows
        if budget is not None:
            body["budget"] = budget
        if scenario is not None:
            body["scenario"] = scenario
        if io_schedule is not None:
            body["io_schedule"] = io_schedule
        return self.request(
            "POST",
            "/schedule",
            json.dumps(body, sort_keys=True).encode("utf-8"),
        )

    def schedule(self, graph, **kwargs) -> Dict[str, Any]:
        """``POST /schedule``; parsed body, :class:`ServeError` on !200."""
        return self._checked(self.schedule_raw(graph, **kwargs))

    def healthz(self) -> Dict[str, Any]:
        return self._checked(self.request("GET", "/healthz"))

    def cache_entry(self, key: str) -> Optional[Dict[str, Any]]:
        """``GET /cache/<key>``: the raw entry document, or None.

        None mirrors the peer-transport contract: a clean 404 means
        the replica simply does not hold the entry.
        """
        raw = self.request("GET", f"/cache/{key}")
        if raw.status == 404:
            return None
        return self._checked(raw)

    def metrics(self) -> Dict[str, Any]:
        return self._checked(self.request("GET", "/metrics"))

    def schedule_stream(
        self,
        graph: str,
        resources: Optional[str] = None,
        nodes: Optional[int] = None,
        deadline_ms: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> Iterator[Dict[str, Any]]:
        """``GET /schedule/stream``: yield improver events as dicts.

        Blocks between events while the server's improver searches; the
        iterator ends when the server closes the stream, which happens
        right after the terminal ``optimal`` / ``exhausted`` event.
        ``timeout`` is the per-read socket timeout (defaults to the
        client's, which is sized for request/response exchanges — pass
        something generous for long improvement runs).

        Raises :class:`ServeError` for a pre-stream refusal (unknown
        graph, draining server) and ``ValueError`` for frames that do
        not parse — both indicate a bug or misuse, not a slow search.
        """
        params = {"graph": graph}
        if resources is not None:
            params["resources"] = resources
        if nodes is not None:
            params["nodes"] = str(nodes)
        if deadline_ms is not None:
            params["deadline_ms"] = str(deadline_ms)
        path = "/schedule/stream?" + urllib.parse.urlencode(params)
        conn = http.client.HTTPConnection(
            self.host,
            self.port,
            timeout=self.timeout if timeout is None else timeout,
        )
        try:
            conn.request("GET", path, headers={"Connection": "close"})
            response = conn.getresponse()
            if response.status != 200:
                raw = RawResponse(
                    status=response.status,
                    headers={
                        name.lower(): value
                        for name, value in response.getheaders()
                    },
                    body=response.read(),
                )
                self._checked(raw)  # raises ServeError
            # SSE frames are blank-line separated; the data line holds
            # the whole event as canonical JSON, so the event-name line
            # is redundant and only sanity-checked.
            data: Optional[str] = None
            while True:
                line = response.readline()
                if not line:
                    break
                text = line.decode("utf-8").rstrip("\n")
                if text.startswith("data: "):
                    data = text[len("data: "):]
                elif text == "" and data is not None:
                    yield json.loads(data)
                    data = None
        finally:
            conn.close()

    # ------------------------------------------------------------------

    def wait_ready(self, timeout: float = 15.0) -> Dict[str, Any]:
        """Poll ``/healthz`` until the server answers 200 (or time out).

        A transport failure (nothing listening yet) and an HTTP error
        (the server is *up* but refusing — draining 503s, a persistent
        5xx bug) are different diagnoses, so the timeout message keeps
        them apart and quotes the last HTTP status and body instead of
        reporting an erroring server as merely "not ready".
        """
        deadline = time.monotonic() + timeout
        last_error: Optional[Exception] = None
        while time.monotonic() < deadline:
            try:
                return self.healthz()
            except (OSError, socket.timeout, ServeError) as exc:
                last_error = exc
            time.sleep(0.05)
        if isinstance(last_error, ServeError):
            raise ReproError(
                f"server at {self.host}:{self.port} is listening but "
                f"kept answering errors for {timeout:.1f}s "
                f"(last response: {last_error})"
            )
        raise ReproError(
            f"server at {self.host}:{self.port} not ready after "
            f"{timeout:.1f}s (last error: {last_error})"
        )
