"""Bring your own workload: compare every scheduler on custom code.

Writes a small DSP kernel in the behavioral language, lowers it, and
races all schedulers in the library over a sweep of resource
constraints — the comparison a downstream user would run first.

Run:  python examples/custom_benchmark.py
"""

from repro import (
    ListPriority,
    ResourceSet,
    exact_schedule,
    list_schedule,
    lower_program,
    parse_program,
    threaded_schedule,
)
from repro.experiments.tables import render_table
from repro.ir.analysis import diameter

SOURCE = """
# A complex multiply-accumulate with a magnitude check.
re = (ar * br) - (ai * bi)
im = (ar * bi) + (ai * br)
accr = accr_in + re
acci = acci_in + im
mag = (accr * accr) + (acci * acci)
ovf = mag > limit
"""

CONSTRAINTS = ("1+/-,1*", "2+/-,1*", "2+/-,2*", "4+/-,4*")


def main() -> None:
    graph = lower_program(parse_program(SOURCE), name="cmac").dfg
    print(f"kernel: {graph.num_nodes} ops "
          f"({graph.op_histogram()}), critical path {diameter(graph)}")
    print()

    rows = []
    for constraint in CONSTRAINTS:
        resources = ResourceSet.parse(constraint)
        row = [constraint]
        row.append(
            list_schedule(graph, resources, ListPriority.READY_ORDER).length
        )
        row.append(
            list_schedule(graph, resources, ListPriority.SINK_DISTANCE).length
        )
        for meta in ("meta1", "meta2", "meta3", "meta4"):
            row.append(threaded_schedule(graph, resources, meta=meta).length)
        row.append(exact_schedule(graph, resources).length)
        rows.append(row)

    print(
        render_table(
            ["resources", "list/fifo", "list/cp",
             "thr/m1", "thr/m2", "thr/m3", "thr/m4", "exact"],
            rows,
            title="schedule length in control steps",
        )
    )
    print()
    print("The exact column certifies how close the heuristics are;")
    print("the threaded columns stay within a step of the best.")


if __name__ == "__main__":
    main()
