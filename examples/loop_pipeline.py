"""Loop scheduling end to end: SSA, phis, rotation, resolution.

Takes a loop body through the paper's whole φ-node story plus the
Section 6 retiming outlook:

1. build loop SSA (phi per loop-carried variable, distance-1 back edges);
2. schedule the body softly; rotate to shorten the steady state;
3. allocate registers, decide each phi's fate, resolve them in place.

Run:  python examples/loop_pipeline.py
"""

from repro import ResourceSet, ThreadedScheduler, parse_program
from repro.allocation import left_edge_allocate
from repro.core.refine import resolve_phi
from repro.core.rotation import rotate_loop
from repro.ir.ssa import loop_ssa, resolve_all_phis

BODY = """
# One iteration of a gated MAC loop.
a = x + k1
b = a * c1
c = b * c2
d = c + a
acc = acc + d
"""


def main() -> None:
    # --- 1. SSA ------------------------------------------------------
    ssa = loop_ssa(parse_program(BODY), name="mac_loop")
    print(f"loop body: {ssa.dfg.num_nodes} ops "
          f"(incl. {len(ssa.phis)} phi)")
    for variable, phi in ssa.phis.items():
        print(f"  {variable}: {phi} <- {ssa.back_edges.get(phi)} "
              "(distance 1)")
    print()

    # --- 2. rotation under two resource mixes -------------------------
    for constraint in ("2+/-,1*", "4+/-,4*"):
        result = rotate_loop(
            ssa, ResourceSet.parse(constraint), rotations=4
        )
        print(f"{constraint}: body length {result.initial_length} -> "
              f"{result.best_length} after {result.rotations_applied} "
              f"rotations (history {result.history})")
    print()

    # --- 3. phi resolution on the unrotated body ----------------------
    scheduler = ThreadedScheduler(
        ssa.dfg, resources=ResourceSet.parse("2+/-,1*")
    ).run()
    schedule = scheduler.harden()
    allocation = left_edge_allocate(schedule)
    decisions = resolve_all_phis(ssa, allocation.register_of)
    print(f"registers: {allocation.count}; phi fates: {decisions}")
    for phi, decision in decisions.items():
        resolve_phi(scheduler.state, phi, into=decision)
    final = scheduler.harden()
    print(f"body after phi resolution: {schedule.length} -> "
          f"{final.length} steps")


if __name__ == "__main__":
    main()
