"""A complete HLS run: behavioral text in, Verilog out.

Parses a behavioral description, lowers it to a dataflow graph,
schedules it softly, allocates registers, builds the controller and
datapath, and emits Verilog — the full microarchitecture pipeline the
paper situates soft scheduling in.

Run:  python examples/full_hls_flow.py
"""

from repro import ResourceSet, ThreadedScheduler, lower_program, parse_program
from repro.allocation import (
    estimate_interconnect,
    left_edge_allocate,
    max_live,
)
from repro.rtl import build_controller, build_datapath, emit_verilog

SOURCE = """
# One iteration of the HAL differential-equation solver.
x1 = x + dx
u1 = u - ((3 * x) * (u * dx)) - ((3 * y) * dx)
y1 = y + u * dx
c  = x1 < a
"""


def main() -> None:
    # Frontend: text -> dataflow graph.
    program = parse_program(SOURCE)
    lowering = lower_program(program, name="diffeq")
    graph = lowering.dfg
    print(f"lowered {len(program.statements)} statements to "
          f"{graph.num_nodes} operations, {graph.num_edges} dependences")
    print(f"free inputs: {sorted(lowering.inputs)}")
    print(f"constants:   {sorted(lowering.constants)}")
    print()

    # Scheduling: soft, then hardened.
    resources = ResourceSet.parse("2+/-,2*")
    scheduler = ThreadedScheduler(graph, resources=resources, meta="meta4")
    scheduler.run()
    schedule = scheduler.harden()
    print(f"schedule: {schedule.length} control steps on "
          f"{resources.notation()}")
    print(schedule.table())
    print()

    # Register allocation.
    allocation = left_edge_allocate(schedule)
    print(f"register pressure: peak {max_live(schedule)} live values "
          f"-> {allocation.count} registers (left-edge)")
    for index, packed in enumerate(allocation.registers):
        values = ", ".join(lt.value for lt in packed)
        print(f"  r{index}: {values}")
    print()

    # Interconnect estimate.
    cost = estimate_interconnect(schedule, allocation)
    print(f"interconnect: {cost.total_mux_inputs} mux inputs total, "
          f"largest mux {cost.largest_mux}-way")
    print()

    # Controller + datapath + Verilog.
    controller = build_controller(schedule)
    datapath = build_datapath(schedule, allocation)
    print(f"controller: {controller.num_states} FSM states, "
          f"{controller.signal_count} control signals")
    print(f"datapath:   {datapath.summary()}")
    print()
    print(emit_verilog(schedule, allocation, module_name="diffeq"))


if __name__ == "__main__":
    main()
