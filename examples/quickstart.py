"""Quickstart: schedule the HAL benchmark softly and inspect the result.

Run:  python examples/quickstart.py
"""

from repro import (
    ResourceSet,
    ThreadedScheduler,
    hal,
    list_schedule,
    ListPriority,
)


def main() -> None:
    # The HAL differential-equation benchmark under the paper's first
    # resource column: two ALUs and two multipliers.
    graph = hal()
    resources = ResourceSet.parse("2+/-,2*")

    # Soft scheduling: one thread per functional unit, operations fed
    # in topological order (the paper's meta schedule 2).
    scheduler = ThreadedScheduler(graph, resources=resources, meta="meta2")
    scheduler.run()

    print(f"benchmark: {graph.name} ({graph.num_nodes} operations)")
    print(f"resources: {resources.notation()}")
    print(f"state diameter (critical path): {scheduler.diameter} steps")
    print()

    print("threads (one per functional unit):")
    for k in range(scheduler.state.K):
        spec = scheduler.state.specs[k]
        members = " -> ".join(scheduler.state.thread_members(k))
        print(f"  {spec.label}: {members}")
    print()

    artificial = scheduler.state.artificial_edges()
    print(f"serialization decisions (artificial edges): {artificial}")
    print()

    # Harden: fix a start step for every operation.
    schedule = scheduler.harden()
    print(f"hardened schedule ({schedule.length} control steps):")
    print(schedule.table())
    print()

    # The traditional baseline lands on the same length here.
    baseline = list_schedule(graph, resources, ListPriority.READY_ORDER)
    print(f"list-scheduling baseline: {baseline.length} steps "
          f"(paper Figure 3: 8)")


if __name__ == "__main__":
    main()
