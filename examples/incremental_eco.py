"""Incremental refinement and engineering changes on a live schedule.

Demonstrates every refinement the paper motivates, on the EWF filter:

1. spill a value when the register file is too small;
2. back-annotate wire delays from a floorplan;
3. engineering change: remove an operation, add a replacement, and
   re-schedule — all without rebuilding the schedule.

Run:  python examples/incremental_eco.py
"""

from repro import ResourceSet, elliptic_wave_filter
from repro.allocation import max_live
from repro.core import ThreadedScheduler, insert_spill
from repro.core.refine import annotate_wire_weights, unschedule
from repro.physical import WireModel, grid_floorplan, wire_delays_for_state
from repro.scheduling.resources import MEM


def main() -> None:
    graph = elliptic_wave_filter()
    resources = ResourceSet.parse("2+/-,1*").with_added(MEM, 1)
    scheduler = ThreadedScheduler(graph, resources=resources, meta="meta2")
    scheduler.run()
    print(f"EWF scheduled softly: {scheduler.diameter} states "
          f"(paper Figure 3: 24)")

    # --- 1. register-pressure refinement -----------------------------
    schedule = scheduler.harden()
    pressure = max_live(schedule)
    budget = pressure - 2
    print(f"\nregister pressure {pressure}, register file holds {budget}")
    from repro.allocation import choose_spill_candidates

    for victim in choose_spill_candidates(schedule, budget):
        store, load = insert_spill(scheduler.state, victim)
        print(f"  spilled {victim}: +{store}" +
              (f", +{load}" if load else ""))
    print(f"after spills: {scheduler.diameter} states")

    # --- 2. physical refinement ---------------------------------------
    plan = grid_floorplan([spec.label for spec in scheduler.state.specs])
    model = WireModel(free_length=1.5, cells_per_cycle=3.0)
    delays = wire_delays_for_state(scheduler.state, plan, model)
    print(f"\nfloorplan: {plan}; {len(delays)} cross-unit edges get "
          "wire delay")
    annotate_wire_weights(scheduler.state, delays)
    print(f"after wire back-annotation: {scheduler.diameter} states")

    # --- 3. engineering change ----------------------------------------
    victim = scheduler.state.thread_members(0)[-1]
    print(f"\nECO: pulling {victim} out of the schedule...")
    unschedule(scheduler.state, victim)
    print(f"  without it: {scheduler.diameter} states")
    scheduler.state.schedule(victim)
    print(f"  re-inserted (possibly elsewhere): {scheduler.diameter} states")

    final = scheduler.harden()
    print(f"\nfinal hard schedule: {final.length} states, "
          f"{len(final.start_times)} operations")


if __name__ == "__main__":
    main()
