"""The paper's Figure 1, end to end.

Reproduces the walkthrough: the seven-vertex dataflow graph, its hard
ALAP schedule, the two-unit soft schedule, and the two refinements
(spill and wire delay) that motivate soft scheduling.

Run:  python examples/paper_figure1.py
"""

from repro import alap_schedule, paper_fig1
from repro.core import ThreadedScheduler, insert_spill, insert_wire_delay
from repro.core.threaded_graph import ThreadSpec
from repro.graphs.paper_fig1 import FIG1_SPILLED, FIG1_WIRE_EDGE
from repro.ir.dot import to_dot
from repro.scheduling.resources import ALU, MEM


def fresh():
    threads = [
        ThreadSpec(fu_type=ALU, label="fu0"),
        ThreadSpec(fu_type=ALU, label="fu1"),
        ThreadSpec(fu_type=MEM, label="mem0"),
    ]
    return ThreadedScheduler(paper_fig1(), threads=threads, meta="meta2").run()


def show(title, scheduler):
    print(f"--- {title} ---")
    print(f"diameter: {scheduler.diameter} states")
    for k in range(scheduler.state.K):
        label = scheduler.state.specs[k].label
        print(f"  {label}: {' -> '.join(scheduler.state.thread_members(k))}")
    free = scheduler.state.free_ids()
    if free:
        print(f"  free vertices: {free}")
    print(scheduler.harden().table())
    print()


def main() -> None:
    graph = paper_fig1()
    print("Figure 1(a): the dataflow graph")
    print(to_dot(graph))

    print(f"Figure 1(b): hard ALAP schedule "
          f"({alap_schedule(graph).length} states)\n")

    base = fresh()
    show("Figure 1(e): soft schedule (paper: 5 states)", base)

    spill = fresh()
    store, load = insert_spill(spill.state, FIG1_SPILLED)
    print(f"spilled {FIG1_SPILLED}: inserted {store} and {load}")
    show("Figure 1(c): after spill refinement (paper: 6 states)", spill)

    wire = fresh()
    wire_id = insert_wire_delay(wire.state, *FIG1_WIRE_EDGE, delay=1)
    print(f"wire delay on {FIG1_WIRE_EDGE}: inserted {wire_id}")
    show("Figure 1(d): after wire-delay refinement (paper: 5 states)", wire)

    print("A hard scheduler would pay +2 states for the spill and +1 for")
    print("the wire delay; the soft schedule absorbed them at +1 and +0.")


if __name__ == "__main__":
    main()
