import json
import signal
import subprocess
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.graphs import get_graph
from repro.ir.serialize import dfg_to_dict
from repro.serve.client import ServeClient

client = ServeClient(port=8765, timeout=60)
print("health:", client.wait_ready(30))

# --- Burst of concurrent duplicates: one compute per key. ---
names = ["HAL", "AR", "FIR"]
requests = names * 8
with ThreadPoolExecutor(max_workers=12) as pool:
    responses = list(pool.map(
        lambda n: client.schedule_raw(n, algorithm="meta2"),
        requests,
    ))
assert all(r.status == 200 for r in responses), \
    [r.status for r in responses]
metrics = client.metrics()
print("metrics:", json.dumps(metrics, sort_keys=True))
assert metrics["computed"] == len(names), metrics
assert metrics["engine_cache"]["stored"] == len(names), metrics
dupes = len(requests) - len(names)
assert metrics["coalesced"] + metrics["cache_hits"] == dupes, metrics

# --- Identical bodies per request, whatever the source. ---
by_name = {}
for name, r in zip(requests, responses):
    by_name.setdefault(name, set()).add(r.body)
assert all(len(bodies) == 1 for bodies in by_name.values()), {
    n: len(b) for n, b in by_name.items()
}

# --- Artifact payload round-trips through an inline graph. ---
ef = get_graph("EF")
rich = client.schedule(dfg_to_dict(ef), artifacts=True, gaps=True)
assert rich["artifact"]["length"] == rich["length"], rich
assert len(rich["artifact"]["ops"]) >= ef.num_nodes, rich
cached = client.schedule(dfg_to_dict(ef), artifacts=True, gaps=True)
assert cached == rich, "cached artifact response diverged"

# --- Overload: a 1-deep queue answers 429, then recovers. ---
overload = subprocess.Popen(
    ["repro", "serve", "--port", "8766", "--max-queue", "1",
     "--batch-window-ms", "500"],
    stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
)
try:
    tiny = ServeClient(port=8766, timeout=60)
    tiny.wait_ready(30)
    statuses = []
    slow = threading.Thread(
        target=lambda: statuses.append(
            tiny.schedule_raw("HAL").status))
    slow.start()
    deadline = time.monotonic() + 10
    while tiny.metrics()["in_flight"] < 1:
        assert time.monotonic() < deadline, "never admitted"
        time.sleep(0.01)
    rejected = tiny.schedule_raw("FIR")
    assert rejected.status == 429, rejected.status
    assert "retry-after" in rejected.headers, rejected.headers
    slow.join(30)
    assert statuses == [200], statuses
    assert tiny.schedule_raw("FIR").status == 200
    overload.send_signal(signal.SIGTERM)
    out, _ = overload.communicate(timeout=30)
    assert overload.returncode == 0, out
    assert "shutdown clean" in out, out
finally:
    if overload.poll() is None:
        overload.kill()
print("serve smoke ok")
