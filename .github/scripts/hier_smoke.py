import json
import signal
import subprocess
import sys

from repro.dispatch.testing import ReplicaSet
from repro.serve.client import ServeClient

replicas = ReplicaSet(count=3, batch_window_ms=2.0).start()
router_args = ["repro", "dispatch", "--port", "8792",
               "--health-interval", "0.3"]
for address in replicas.addresses():
    router_args += ["--replica", address]
router = subprocess.Popen(
    router_args,
    stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
)
try:
    client = ServeClient(port=8792, timeout=120)
    print("router health:", client.wait_ready(30))

    hier = subprocess.run(
        ["repro", "hier", "HIER10K",
         "--target", "127.0.0.1:8792",
         "--workers", "8", "--json", "hier_report.json"],
        capture_output=True, text=True, timeout=480,
    )
    sys.stdout.write(hier.stdout)
    sys.stderr.write(hier.stderr)
    assert hier.returncode == 0, (
        f"repro hier failed with {hier.returncode}"
    )

    report = json.load(open("hier_report.json"))
    assert report["format"] == "repro-hier-v1", report["format"]
    assert report["num_ops"] == 10000, report["num_ops"]
    print("rounds:", report["rounds"], "gaps:", report["gaps"])
    assert report["rounds"] >= 2, report
    gaps = report["gaps"]
    assert len(gaps) == report["rounds"], report
    assert all(b <= a for a, b in zip(gaps, gaps[1:])), gaps

    # The cluster computed exactly one result per unique
    # subgraph cache key; every other job in the fan-out was
    # a hit or coalesced.  The hier run is the only traffic.
    metrics = client.metrics()
    print("cluster:", json.dumps(metrics["cluster"], sort_keys=True))
    assert metrics["cluster"]["replicas_up"] == 3, \
        metrics["cluster"]
    assert metrics["router"]["failed"] == 0, metrics["router"]
    assert metrics["cluster"]["computed"] == report["unique_keys"], (
        metrics["cluster"], report["unique_keys"])
    assert report["cached_jobs"] == \
        report["jobs"] - report["unique_keys"], report

    router.send_signal(signal.SIGTERM)
    out, _ = router.communicate(timeout=30)
    assert router.returncode == 0, out
    print("hier smoke ok")
finally:
    if router.poll() is None:
        router.kill()
        router.communicate(timeout=10)
    replicas.stop()
