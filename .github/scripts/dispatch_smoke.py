import json
import signal
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.dispatch.testing import ReplicaSet
from repro.serve.client import ServeClient

replicas = ReplicaSet(count=2, batch_window_ms=5.0).start()
router = subprocess.Popen(
    ["repro", "dispatch", "--port", "8790",
     "--replica", replicas.addresses()[0],
     "--replica", replicas.addresses()[1],
     "--health-interval", "0.3"],
    stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
)
try:
    client = ServeClient(port=8790, timeout=60)
    print("router health:", client.wait_ready(30))

    # --- Duplicate burst: one compute per key CLUSTER-WIDE. ---
    names = ["HAL", "AR", "FIR", "EF"]
    requests = names * 8
    with ThreadPoolExecutor(max_workers=16) as pool:
        responses = list(pool.map(
            lambda n: client.schedule_raw(n, algorithm="meta2"),
            requests,
        ))
    assert all(r.status == 200 for r in responses), \
        [r.status for r in responses]
    metrics = client.metrics()
    print("router:", json.dumps(metrics["router"], sort_keys=True))
    print("cluster:", json.dumps(metrics["cluster"], sort_keys=True))
    assert metrics["cluster"]["computed"] == len(names), metrics["cluster"]
    assert metrics["cluster"]["replicas_up"] == 2, metrics["cluster"]
    assert metrics["router"]["failed"] == 0, metrics["router"]
    by_name = {}
    for name, r in zip(requests, responses):
        by_name.setdefault(name, set()).add(r.body)
    assert all(len(b) == 1 for b in by_name.values()), \
        {n: len(b) for n, b in by_name.items()}

    # --- Routed bytes == direct-replica bytes. ---
    for index in range(2):
        direct = replicas.client(index).schedule_raw(
            "HAL", algorithm="meta2")
        assert direct.body == next(iter(by_name["HAL"])), \
            "routed response diverged from direct replica"

    # --- SIGTERM one replica mid-burst: zero client failures. ---
    # Distinct inline graphs spread ownership over both
    # replicas; verify the victim owns some keys up front so
    # the failover counter is guaranteed to move.
    from repro.graphs.random_dags import random_layered_dag
    from repro.ir.serialize import dfg_to_dict

    graphs = [dfg_to_dict(random_layered_dag(8, seed=seed))
              for seed in range(12)]
    owners = []
    for graph in graphs:
        r = client.schedule_raw(graph, algorithm="list")
        assert r.status == 200, r.status
        owners.append(r.headers["x-repro-replica"])
    # Kill a replica that demonstrably owns keys in the burst
    # (ring ownership depends on the ephemeral ports), so the
    # failover counter is guaranteed to move.
    victim = owners[0]
    victim_index = replicas.addresses().index(victim)

    statuses = []
    lock = threading.Lock()

    def sustained(graph):
        r = client.schedule_raw(graph, algorithm="list")
        with lock:
            statuses.append(r.status)

    burst = graphs * 4
    with ThreadPoolExecutor(max_workers=8) as pool:
        futures = [pool.submit(sustained, g) for g in burst[:16]]
        time.sleep(0.2)
        replicas.terminate(victim_index)   # SIGTERM mid-burst
        futures += [pool.submit(sustained, g) for g in burst[16:]]
        for f in futures:
            f.result(timeout=120)
    assert statuses and all(s == 200 for s in statuses), \
        [s for s in statuses if s != 200]
    assert replicas.members[victim_index].wait(30) == 0, \
        "replica drain failed"

    deadline = time.monotonic() + 20
    while client.metrics()["cluster"]["replicas_up"] != 1:
        assert time.monotonic() < deadline, "probe never ejected"
        time.sleep(0.2)
    metrics = client.metrics()
    print("after kill:", json.dumps(metrics["router"], sort_keys=True))
    assert metrics["router"]["failed"] == 0, metrics["router"]
    assert metrics["router"]["failed_over"] > 0, metrics["router"]
    assert metrics["router"]["ejected"] >= 1, metrics["router"]

    # --- Router drains clean on SIGTERM. ---
    router.send_signal(signal.SIGTERM)
    out, _ = router.communicate(timeout=30)
    assert router.returncode == 0, out
    assert "shutdown clean" in out, out
    print("dispatch smoke ok")
finally:
    if router.poll() is None:
        router.kill()
        router.communicate(timeout=10)
    replicas.stop()
