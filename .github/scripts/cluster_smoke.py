import json
import signal
import subprocess
import threading
import time
from concurrent.futures import ThreadPoolExecutor

from repro.dispatch.testing import ReplicaSet
from repro.graphs.random_dags import random_layered_dag
from repro.ir.serialize import dfg_to_dict
from repro.serve.client import ServeClient

replicas = ReplicaSet(
    count=3, batch_window_ms=5.0, peer_mesh=True
).start()
router_args = ["repro", "dispatch", "--port", "8791",
               "--health-interval", "0.3"]
for address in replicas.addresses():
    router_args += ["--replica", address]
router = subprocess.Popen(
    router_args,
    stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
)
try:
    client = ServeClient(port=8791, timeout=60)
    print("router health:", client.wait_ready(30))

    # --- Duplicate burst over the mesh: one compute per key
    # cluster-wide (peer fetches count as cache hits). ---
    graphs = [dfg_to_dict(random_layered_dag(8, seed=100 + s))
              for s in range(12)]
    with ThreadPoolExecutor(max_workers=16) as pool:
        responses = list(pool.map(
            lambda g: client.schedule_raw(g, algorithm="list"),
            graphs * 5,
        ))
    assert all(r.status == 200 for r in responses), \
        [r.status for r in responses]
    metrics = client.metrics()
    print("cluster:", json.dumps(metrics["cluster"], sort_keys=True))
    assert metrics["cluster"]["computed"] == len(graphs), \
        metrics["cluster"]
    assert metrics["cluster"]["replicas_up"] == 3, \
        metrics["cluster"]
    assert metrics["router"]["failed"] == 0, metrics["router"]

    # Pick a victim that demonstrably owns keys in the burst.
    owned = client.schedule_raw(graphs[0], algorithm="list")
    victim = owned.headers["x-repro-replica"]
    victim_index = replicas.addresses().index(victim)
    survivors = [i for i in range(3) if i != victim_index]

    # --- Peer fetch across the mesh: compute a fresh key on
    # the victim, then ask the survivors directly.  Publish
    # fanout is 1, so at least one survivor must peer-fetch,
    # and both must answer the exact bytes the victim
    # computed. ---
    probe = dfg_to_dict(random_layered_dag(9, seed=999))
    computed = replicas.client(victim_index).schedule_raw(
        probe, algorithm="list")
    assert computed.status == 200, computed.status
    for index in survivors:
        served = replicas.client(index).schedule_raw(
            probe, algorithm="list")
        assert served.status == 200, served.status
        assert served.body == computed.body, \
            "peer-served bytes diverged from the compute"
    survivor_hits = sum(
        replicas.client(i).metrics()["peer_hits"]
        for i in survivors
    )
    assert survivor_hits >= 1, "no survivor peer-fetched"

    # --- SIGTERM the victim mid-burst.  The cluster /metrics
    # aggregate only sums up replicas, so snapshot the victim
    # first to account for its computes. ---
    victim_computed = replicas.client(
        victim_index).metrics()["computed"]
    survivors_before = {
        i: replicas.client(i).metrics()["computed"]
        for i in survivors
    }
    statuses = []
    lock = threading.Lock()

    def sustained(graph):
        r = client.schedule_raw(graph, algorithm="list")
        with lock:
            statuses.append(r.status)

    burst = graphs * 4
    with ThreadPoolExecutor(max_workers=8) as pool:
        futures = [pool.submit(sustained, g) for g in burst[:16]]
        time.sleep(0.2)
        replicas.terminate(victim_index)   # SIGTERM mid-burst
        futures += [pool.submit(sustained, g) for g in burst[16:]]
        for f in futures:
            f.result(timeout=120)
    assert statuses and all(s == 200 for s in statuses), \
        [s for s in statuses if s != 200]
    assert replicas.members[victim_index].wait(30) == 0, \
        "replica drain failed"

    deadline = time.monotonic() + 20
    while client.metrics()["cluster"]["replicas_up"] != 2:
        assert time.monotonic() < deadline, "probe never ejected"
        time.sleep(0.2)
    metrics = client.metrics()
    print("after kill:",
          json.dumps(metrics["cluster"], sort_keys=True))
    assert metrics["router"]["failed"] == 0, metrics["router"]

    # The store invariant across the kill: the survivors
    # inherited the victim's keys without recomputing them
    # (publish put the entries on the failover targets), so
    # cluster-wide computes still equal unique keys.
    unique_keys = len(graphs) + 1   # burst graphs + probe
    total = metrics["cluster"]["computed"] + victim_computed
    assert total == unique_keys, (
        metrics["cluster"], victim_computed)
    for index in survivors:
        now = replicas.client(index).metrics()["computed"]
        assert now == survivors_before[index], \
            f"survivor {index} recomputed after the kill"
    assert metrics["cluster"]["peer_hits"] >= 1, \
        metrics["cluster"]

    # --- Router drains clean on SIGTERM. ---
    router.send_signal(signal.SIGTERM)
    out, _ = router.communicate(timeout=30)
    assert router.returncode == 0, out
    assert "shutdown clean" in out, out
    print("cluster store smoke ok")
finally:
    if router.poll() is None:
        router.kill()
        router.communicate(timeout=10)
    replicas.stop()
