"""Scenario smoke: all three constraint-scenario modes through a live
1-router / 2-replica cluster.

Asserts, end to end:

- every mode (memory-banked, I/O-pinned via ``io_schedule``,
  reliability-hardened) answers 200 through the router with the
  mode's semantic guarantees visible in the artifact;
- responses are byte-deterministic: a repeat of the same request
  body through the router matches the first answer byte for byte,
  whether computed, cached, or peer-served;
- one compute per unique key cluster-wide under a duplicate burst,
  with the per-mode ``scenario_*_jobs`` counters in the aggregated
  ``/metrics`` accounting each fresh compute exactly once;
- legacy key-compat: a scenario-free request produces the exact
  historical cache key (golden literal) in ``X-Repro-Key``, and a
  malformed scenario answers 400 — never 500 — without disturbing
  the cluster.
"""

import hashlib
import json
import signal
import subprocess
from concurrent.futures import ThreadPoolExecutor

from repro.graphs import get_graph
from repro.graphs.scenario import IOPIN_PINS, TMRMARK_OPS
from repro.ir.serialize import dfg_fingerprint
from repro.serve.client import ServeClient

MEMORY = {"mode": "memory", "banks": 2, "ports": 1}
RELIABILITY = {"mode": "reliability", "ops": list(TMRMARK_OPS)}

replicas = None
router = None
try:
    from repro.dispatch.testing import ReplicaSet

    replicas = ReplicaSet(
        count=2, batch_window_ms=5.0, peer_mesh=True
    ).start()
    router_args = ["repro", "dispatch", "--port", "8795",
                   "--health-interval", "0.3"]
    for address in replicas.addresses():
        router_args += ["--replica", address]
    router = subprocess.Popen(
        router_args,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    client = ServeClient(port=8795, timeout=60)
    print("router health:", client.wait_ready(30))

    # --- Mode 1: banked memory.  The scenario banks the flat mem FU;
    # the artifact's meta records the banking the worker applied. ---
    memory = client.schedule_raw(
        "MEMBANK", resources="2+/-,2*,2mem", algorithm="list",
        artifacts=True, scenario=MEMORY,
    )
    assert memory.status == 200, memory.status
    memory_meta = memory.json()["artifact"]["meta"]["scenario"]
    assert memory_meta["mode"] == "memory", memory_meta
    assert memory_meta["banks"] == 2 and memory_meta["ports"] == 1, \
        memory_meta

    # --- Mode 2: I/O pins via the io_schedule shorthand.  Every
    # pinned op must land on its exact step. ---
    io = client.schedule_raw(
        "IOPIN", algorithm="fds", artifacts=True,
        io_schedule=dict(IOPIN_PINS),
    )
    assert io.status == 200, io.status
    io_ops = io.json()["artifact"]["ops"]
    for op, step in IOPIN_PINS.items():
        assert io_ops[op]["step"] == step, (op, step, io_ops[op])

    # --- Mode 3: reliability hardening.  Replicas and voters are
    # inserted before scheduling and land in the artifact. ---
    tmr = client.schedule_raw(
        "TMRMARK", algorithm="list", artifacts=True,
        scenario=RELIABILITY,
    )
    assert tmr.status == 200, tmr.status
    inserted = set(tmr.json()["artifact"]["inserted"])
    for op in TMRMARK_OPS:
        missing = {f"{op}__r1", f"{op}__r2", f"{op}__vote"} - inserted
        assert not missing, missing

    # --- Byte-determinism + one compute per key cluster-wide: a
    # concurrent duplicate burst of all three modes must answer the
    # original bytes and move each mode counter exactly once. ---
    originals = {"memory": memory, "io": io, "reliability": tmr}

    def repeat(mode):
        if mode == "memory":
            return client.schedule_raw(
                "MEMBANK", resources="2+/-,2*,2mem",
                algorithm="list", artifacts=True, scenario=MEMORY)
        if mode == "io":
            return client.schedule_raw(
                "IOPIN", algorithm="fds", artifacts=True,
                io_schedule=dict(IOPIN_PINS))
        return client.schedule_raw(
            "TMRMARK", algorithm="list", artifacts=True,
            scenario=RELIABILITY)

    burst = list(originals) * 6
    with ThreadPoolExecutor(max_workers=12) as pool:
        responses = list(pool.map(repeat, burst))
    for mode, response in zip(burst, responses):
        assert response.status == 200, (mode, response.status)
        assert response.body == originals[mode].body, \
            f"{mode}: repeated bytes diverged"

    metrics = client.metrics()
    cluster = metrics["cluster"]
    print("cluster:", json.dumps(
        {k: cluster[k] for k in sorted(cluster) if "scenario" in k
         or k in ("computed", "cache_hits")}, sort_keys=True))
    assert cluster["scenario_memory_jobs"] == 1, cluster
    assert cluster["scenario_io_jobs"] == 1, cluster
    assert cluster["scenario_reliability_jobs"] == 1, cluster
    assert metrics["router"]["failed"] == 0, metrics["router"]

    # --- Legacy key-compat golden: a scenario-free request's key is
    # the exact historical sha256(graph_hash|resources|algorithm). ---
    plain = client.schedule_raw(
        "HAL", resources="2+/-,2*", algorithm="list")
    assert plain.status == 200, plain.status
    graph_hash = dfg_fingerprint(get_graph("HAL"))
    golden = hashlib.sha256(
        f"{graph_hash}|2+/-,2*|list(ready)".encode("utf-8")
    ).hexdigest()
    assert plain.headers["x-repro-key"] == golden, \
        "scenario refactor changed the historical cache key"

    # A scenario adds a suffix: same request + scenario must route to
    # a different key (its own cache entry and owner).
    hardened = client.schedule_raw(
        "HAL", resources="2+/-,2*", algorithm="list",
        scenario={"mode": "reliability", "ops": ["m1"]})
    assert hardened.status == 200, hardened.status
    assert hardened.headers["x-repro-key"] != golden

    # --- Malformed scenarios: strict 400s through the router, and
    # the cluster keeps answering afterwards. ---
    for bad in ({"mode": "warp"}, {"mode": "io", "pins": {}}, 42,
                {"mode": "memory", "banks": 2}):
        response = client.schedule_raw("HAL", scenario=bad)
        assert response.status == 400, (bad, response.status)
    assert client.schedule_raw("HAL").status == 200

    # --- Router drains clean on SIGTERM. ---
    router.send_signal(signal.SIGTERM)
    out, _ = router.communicate(timeout=30)
    assert router.returncode == 0, out
    assert "shutdown clean" in out, out
    print("scenario smoke ok")
finally:
    if router is not None and router.poll() is None:
        router.kill()
        router.communicate(timeout=10)
    if replicas is not None:
        replicas.stop()
