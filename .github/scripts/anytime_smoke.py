"""CI anytime-smoke: the anytime exact tier end to end.

Boot 1 router + 2 peer-meshed replicas, seed the heuristic tier with
a force-directed result, then stream ``bnb-anytime`` improvements for
the same graph through the router and assert the tier's contracts:

- the SSE stream's incumbents are monotone non-increasing and end in
  a proved-optimality terminal event that beats the FDS seed;
- exactly one replica ran the improver (canonical-key routing), and
  the improved canonical entry is peer-visible on the *other* replica
  (accepted rewrites publish across the mesh);
- the heuristic tier is untouched: every force-directed length still
  matches the committed BENCH_baseline.json.
"""
import json
import signal
import subprocess
import time

from repro.dispatch.testing import ReplicaSet
from repro.serve.client import ServeClient

replicas = ReplicaSet(
    count=2, batch_window_ms=2.0, peer_mesh=True
).start()
router_args = ["repro", "dispatch", "--port", "8793",
               "--health-interval", "0.3"]
for address in replicas.addresses():
    router_args += ["--replica", address]
router = subprocess.Popen(
    router_args,
    stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
)
try:
    client = ServeClient(port=8793, timeout=120)
    print("router health:", client.wait_ready(30))

    # --- Seed the heuristic tier: the cached FDS entry is what the
    # improver's incumbent may start from. ---
    fds = client.schedule_raw("HAL", algorithm="force-directed")
    assert fds.status == 200, fds.status
    fds_length = fds.json()["length"]
    print("FDS seed length:", fds_length)

    # --- Stream improvements through the router. ---
    events = list(client.schedule_stream("HAL", timeout=180))
    assert events and events[0]["type"] == "incumbent", events[:1]
    lengths = [e["length"] for e in events if e["type"] == "incumbent"]
    assert lengths == sorted(lengths, reverse=True), lengths
    terminal = events[-1]
    print("terminal event:", json.dumps(terminal, sort_keys=True))
    assert terminal["type"] == "optimal", terminal
    assert terminal["proved"] is True, terminal
    assert terminal["length"] <= min(lengths), (terminal, lengths)
    assert terminal["length"] < fds_length, (
        "the proved optimum must beat the FDS seed", terminal, fds_length)

    # --- Exactly one replica ran the improver: the router routes the
    # stream by the canonical bnb-anytime key. ---
    jobs = [replicas.client(i).metrics()["improve_jobs"]
            for i in range(2)]
    print("improve_jobs per replica:", jobs)
    assert sorted(jobs) == [0, 1], jobs
    owner = jobs.index(1)
    other = 1 - owner
    owner_metrics = replicas.client(owner).metrics()
    assert owner_metrics["proved_optimal"] == 1, owner_metrics
    assert owner_metrics["improved_entries"] >= 1, owner_metrics

    # --- The improved canonical entry now serves POST /schedule from
    # cache on its owner, carrying the proof... ---
    served = replicas.client(owner).schedule_raw(
        "HAL", algorithm="bnb-anytime", artifacts=True)
    assert served.status == 200, served.status
    body = served.json()
    assert body["length"] == terminal["length"], body["length"]
    assert body["artifact"]["meta"]["bnb"]["proved"] is True, body
    key = served.headers["x-repro-key"]

    # --- ...and is peer-visible on the OTHER replica: the accepted
    # rewrite published across the mesh (async, so poll briefly). ---
    deadline = time.monotonic() + 20
    entry = None
    while time.monotonic() < deadline:
        entry = replicas.client(other).cache_entry(key)
        if entry is not None:
            break
        time.sleep(0.2)
    assert entry is not None, "improved entry never reached the peer"
    assert entry["length"] == terminal["length"], entry["length"]
    assert entry["artifact"]["meta"]["bnb"]["proved"] is True, entry
    print("peer-visible entry:", entry["length"], "proved")

    # --- The heuristic tier is untouched: FDS lengths still match the
    # committed baseline (the anytime tier rewrites only its own
    # canonical entries, never the seeds it read). ---
    baseline = json.load(open("BENCH_baseline.json"))["results"]
    checked = 0
    for row in baseline:
        if row["algorithm"] != "force-directed":
            continue
        response = client.schedule_raw(
            row["graph"], algorithm="force-directed")
        assert response.status == 200, (row["graph"], response.status)
        got = response.json()["length"]
        assert got == row["length"], (row["graph"], got, row["length"])
        checked += 1
    assert checked > 0, "baseline carried no force-directed rows"
    print(f"FDS baseline intact across {checked} graphs")

    # --- Router drains clean on SIGTERM. ---
    router.send_signal(signal.SIGTERM)
    out, _ = router.communicate(timeout=30)
    assert router.returncode == 0, out
    assert "shutdown clean" in out, out
    print("anytime smoke ok")
finally:
    if router.poll() is None:
        router.kill()
        router.communicate(timeout=10)
    replicas.stop()
