"""Chaos smoke: the serving invariants under injected faults.

Two cluster runs, 1 router + 3 peer-meshed replicas each:

1. a fault-free baseline that records the canonical response bytes
   for a fixed workload;
2. a chaos run with `repro.faultlab` armed — a poison job
   (registry graph FIR) that kills every pool worker it touches,
   plus a SIGKILLed replica mid-run and a same-port recovery.

Asserts, under chaos: zero failed client requests, responses
byte-identical to the fault-free baseline, the poison job answered as
a structured never-cached `worker-crash` error while its siblings
complete, worker-crash/quarantine counters visible in the router's
aggregated /metrics, and the victim replica's circuit breaker
observed opening on the kill and closing on the recovery.
"""

import json
import os
import signal
import socket
import subprocess
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from repro.dispatch.testing import ReplicaSet, start_replica
from repro.graphs.random_dags import random_layered_dag
from repro.ir.serialize import dfg_to_dict
from repro.serve.client import ServeClient

ROUTER_PORT = 8797
POISON = "FIR"  # registry graph; worker-exit fault matches its jobs
GRAPHS = [
    dfg_to_dict(random_layered_dag(10, seed=500 + s)) for s in range(8)
]

FAULT_ENV = {
    "REPRO_FAULTLAB": "1",
    "REPRO_FAULT_WORKER_EXIT": POISON,
}

SCRATCH = Path(tempfile.mkdtemp(prefix="repro-chaos-"))


def boot_cluster(tag, extra_router_args=()):
    replicas = ReplicaSet(
        count=3,
        batch_window_ms=5.0,
        workers=2,
        peer_mesh=True,
        cache_root=SCRATCH / tag,
    ).start()
    args = [
        "repro", "dispatch", "--port", str(ROUTER_PORT),
        "--health-interval", "0.3", *extra_router_args,
    ]
    for address in replicas.addresses():
        args += ["--replica", address]
    router = subprocess.Popen(
        args,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    client = ServeClient(port=ROUTER_PORT, timeout=120)
    client.wait_ready(30)
    return replicas, router, client


def stop_router(router):
    if router.poll() is None:
        router.send_signal(signal.SIGTERM)
        try:
            router.communicate(timeout=30)
        except subprocess.TimeoutExpired:
            router.kill()
            router.communicate(timeout=10)


def burst(client, duplicates=5):
    """The workload: every graph `duplicates` times, concurrently.

    Returns {graph index: response bytes}; asserts every request
    answered 200 and duplicates answered byte-identically.
    """
    requests = [(i, g) for i, g in enumerate(GRAPHS)] * duplicates
    with ThreadPoolExecutor(max_workers=12) as pool:
        responses = list(pool.map(
            lambda item: (
                item[0],
                client.schedule_raw(item[1], algorithm="list"),
            ),
            requests,
        ))
    by_graph = {}
    for index, response in responses:
        assert response.status == 200, (index, response.status)
        by_graph.setdefault(index, set()).add(response.body)
    assert all(len(bodies) == 1 for bodies in by_graph.values()), {
        i: len(b) for i, b in by_graph.items()
    }
    return {i: bodies.pop() for i, bodies in by_graph.items()}


def wait_for(predicate, what, timeout=30.0):
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        assert time.monotonic() < deadline, f"timed out waiting: {what}"
        time.sleep(0.2)


def port_is_free(port):
    """The dead replica's orphaned pool workers hold forked dups of
    its listening socket for a beat; the port frees once their
    orphan watchdogs fire.  SO_REUSEADDR mirrors the server's own
    bind semantics: TIME_WAIT leftovers from the kill don't block
    it, only a live listener does."""
    sock = socket.socket()
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    try:
        sock.bind(("127.0.0.1", port))
        return True
    except OSError:
        return False
    finally:
        sock.close()


# --- Phase 1: fault-free baseline bytes. -------------------------------
for variable in FAULT_ENV:
    assert variable not in os.environ, f"{variable} already set"
replicas, router, client = boot_cluster("baseline")
try:
    baseline = burst(client, duplicates=2)
finally:
    stop_router(router)
    replicas.stop()
print(f"baseline: {len(baseline)} graphs recorded")

# --- Phase 2: chaos run. -----------------------------------------------
os.environ.update(FAULT_ENV)  # inherited by every replica subprocess
replicas, router, client = boot_cluster(
    "chaos",
    extra_router_args=[
        "--breaker-threshold", "2",
        "--breaker-reset", "1",
        "--retry-base-ms", "5",
        "--retry-max-ms", "50",
    ],
)
restarted = None
try:
    # Determinism under an armed (but not yet triggered) harness: the
    # chaos cluster serves the exact baseline bytes.
    chaos_bytes = burst(client)
    assert chaos_bytes == baseline, "chaos run diverged from baseline"
    metrics = client.metrics()
    assert metrics["router"]["failed"] == 0, metrics["router"]
    assert metrics["cluster"]["computed"] == len(GRAPHS), \
        metrics["cluster"]
    assert metrics["cluster"]["worker_crashes"] == 0, \
        metrics["cluster"]

    # The poison job, concurrently with fresh siblings: FIR kills its
    # worker on every attempt, is quarantined after two attributable
    # kills, and answers a structured error — while every sibling
    # (and the pool they share) survives.
    siblings = [
        dfg_to_dict(random_layered_dag(9, seed=900 + s))
        for s in range(4)
    ]
    with ThreadPoolExecutor(max_workers=5) as pool:
        poison_future = pool.submit(
            client.schedule_raw, POISON, algorithm="list"
        )
        sibling_responses = list(pool.map(
            lambda g: client.schedule_raw(g, algorithm="list"),
            siblings,
        ))
    for response in sibling_responses:
        assert response.status == 200, response.status
        assert response.json().get("error") is None, response.json()
    poison = poison_future.result()
    assert poison.status == 200, (poison.status, poison.body)
    poison_error = poison.json().get("error") or ""
    assert "worker-crash" in poison_error, poison.json()

    metrics = client.metrics()
    print("after poison:",
          json.dumps({k: metrics["cluster"][k] for k in
                      ("computed", "worker_crashes",
                       "quarantined_jobs")}, sort_keys=True))
    assert metrics["cluster"]["worker_crashes"] >= 2, \
        metrics["cluster"]
    assert metrics["cluster"]["quarantined_jobs"] >= 1, \
        metrics["cluster"]
    assert metrics["router"]["failed"] == 0, metrics["router"]

    # Never cached: a resubmission answers the same structured error
    # from quarantine without feeding another worker.
    crashes_before = client.metrics()["cluster"]["worker_crashes"]
    again = client.schedule_raw(POISON, algorithm="list")
    assert again.status == 200 and again.body == poison.body, (
        again.status, again.body, poison.body)
    assert client.metrics()["cluster"]["worker_crashes"] == \
        crashes_before, "quarantined job reached a worker again"

    # SIGKILL one replica mid-run: a hard crash, no drain.  The
    # sustained burst must see zero failures, and the victim's
    # breaker must open.
    owner = client.schedule_raw(GRAPHS[0], algorithm="list")
    victim = owner.headers["x-repro-replica"]
    victim_index = replicas.addresses().index(victim)
    victim_port = replicas.members[victim_index].port
    replicas.kill(victim_index)
    killed_bytes = burst(client)
    assert killed_bytes == baseline, "bytes diverged after the kill"
    metrics = wait_for(
        lambda: (lambda m: m if (
            m["cluster"]["replicas_up"] == 2
            and m["router"]["breaker_opened"] >= 1
        ) else None)(client.metrics()),
        "victim ejection + breaker open",
    )
    assert metrics["router"]["failed"] == 0, metrics["router"]
    snapshot = metrics["router"]["ring"]["breakers"][victim]
    assert snapshot["opened"] >= 1, snapshot
    print("after kill:", json.dumps(snapshot, sort_keys=True))

    # Recovery: a fresh replica on the victim's port (same store,
    # same peers).  Health probes readmit it and close its breaker.
    replicas.members[victim_index].wait(20)
    wait_for(
        lambda: port_is_free(victim_port),
        f"port {victim_port} released",
    )
    peer_args = []
    for index, address in enumerate(replicas.addresses()):
        if index != victim_index:
            peer_args += ["--peer", address]
    restarted = start_replica(
        [
            "--batch-window-ms", "5.0", "--workers", "2",
            "--cache-dir",
            str(SCRATCH / "chaos" / f"replica-{victim_index}"),
            *peer_args,
        ],
        port=victim_port,
    )
    metrics = wait_for(
        lambda: (lambda m: m if (
            m["cluster"]["replicas_up"] == 3
            and m["router"]["breaker_closed"] >= 1
        ) else None)(client.metrics()),
        "recovery readmission + breaker close",
    )
    snapshot = metrics["router"]["ring"]["breakers"][victim]
    assert snapshot["state"] == "closed", snapshot
    assert snapshot["closed"] >= 1, snapshot
    print("after recovery:", json.dumps(snapshot, sort_keys=True))

    # Full determinism after quarantine, kill, and recovery.
    final_bytes = burst(client, duplicates=2)
    assert final_bytes == baseline, "bytes diverged after recovery"
    assert client.metrics()["router"]["failed"] == 0

    # The router itself still drains clean.
    router.send_signal(signal.SIGTERM)
    out, _ = router.communicate(timeout=30)
    assert router.returncode == 0, out
    assert "shutdown clean" in out, out
    print("chaos smoke ok")
finally:
    stop_router(router)
    if restarted is not None:
        restarted.terminate()
        restarted.wait(20)
    replicas.stop()
