"""Bench E2: the Figure 1 walkthrough (soft schedule + refinements).

Times each leg of the walkthrough and asserts the paper's numbers:
soft schedule 5 states, 6 after spilling vertex 3, 5 after the wire
delay.  ``python -m repro.experiments.figure1`` prints the narrative.
"""

from repro.core.refine import insert_spill, insert_wire_delay
from repro.experiments.figure1 import _fresh_scheduler
from repro.graphs.paper_fig1 import FIG1_SPILLED, FIG1_WIRE_EDGE


def test_soft_schedule(benchmark):
    scheduler = benchmark(_fresh_scheduler)
    assert scheduler.diameter == 5


def test_spill_refinement(benchmark):
    def run():
        scheduler = _fresh_scheduler()
        insert_spill(scheduler.state, FIG1_SPILLED)
        return scheduler

    scheduler = benchmark(run)
    assert scheduler.diameter == 6


def test_wire_delay_refinement(benchmark):
    def run():
        scheduler = _fresh_scheduler()
        insert_wire_delay(scheduler.state, *FIG1_WIRE_EDGE, delay=1)
        return scheduler

    scheduler = benchmark(run)
    assert scheduler.diameter == 5


def test_hardening(benchmark):
    scheduler = _fresh_scheduler()
    schedule = benchmark(scheduler.harden)
    assert schedule.length == 5
