"""Ablation bench: all schedulers head-to-head on the paper benchmarks.

Not a paper artifact per se — this is the design-choice ablation
DESIGN.md calls for: list (both priorities), force-directed, threaded
(best meta) and, on HAL, the exact branch-and-bound optimum as the
yardstick.  The graph/constraint line-up is the unified suite from
:mod:`repro.engine.bench` (also behind ``python -m repro bench``).
"""

import pytest

from repro.core.scheduler import threaded_schedule
from repro.engine.bench import SUITE_BENCHES, SUITE_CONSTRAINT
from repro.graphs.registry import get_graph
from repro.ir.analysis import diameter
from repro.scheduling.exact import exact_schedule
from repro.scheduling.force_directed import force_directed_schedule
from repro.scheduling.list_scheduler import ListPriority, list_schedule
from repro.scheduling.resources import ResourceSet

RESOURCES = ResourceSet.parse(SUITE_CONSTRAINT)
BENCHES = SUITE_BENCHES


@pytest.mark.parametrize("bench_name", BENCHES)
def test_list_ready_order(benchmark, bench_name):
    graph = get_graph(bench_name)
    schedule = benchmark(
        list_schedule, graph, RESOURCES, ListPriority.READY_ORDER
    )
    assert schedule.length >= diameter(graph)


@pytest.mark.parametrize("bench_name", BENCHES)
def test_list_critical_path(benchmark, bench_name):
    graph = get_graph(bench_name)
    schedule = benchmark(
        list_schedule, graph, RESOURCES, ListPriority.SINK_DISTANCE
    )
    assert schedule.length >= diameter(graph)


@pytest.mark.parametrize("bench_name", BENCHES)
def test_threaded_meta4(benchmark, bench_name):
    graph = get_graph(bench_name)
    schedule = benchmark(
        threaded_schedule, graph, RESOURCES, "meta4-list-order"
    )
    assert schedule.length >= diameter(graph)


@pytest.mark.parametrize("bench_name", ("HAL", "FIR"))
def test_force_directed(benchmark, bench_name):
    graph = get_graph(bench_name)
    latency = diameter(graph) + 3
    schedule = benchmark(
        force_directed_schedule, graph, RESOURCES, latency
    )
    assert schedule.length <= latency


def test_exact_hal(benchmark):
    graph = get_graph("HAL")
    schedule = benchmark(exact_schedule, graph, RESOURCES)
    assert schedule.length == 7  # certified optimum

    heuristic = list_schedule(graph, RESOURCES, ListPriority.SINK_DISTANCE)
    assert schedule.length <= heuristic.length
