"""Bench: the select() tie-break ablation (design-choice record).

Times each tie-break policy over the paper grid and asserts the
documented ordering on the random population (append <= first).
"""

import pytest

from repro.experiments.tiebreak_ablation import (
    POLICIES,
    _length,
    tiebreak_ablation,
)
from repro.graphs.registry import get_graph
from repro.scheduling.resources import ResourceSet

GRID = [
    (name, constraint)
    for name in ("HAL", "AR", "EF", "FIR")
    for constraint in ("2+/-,2*", "4+/-,4*", "2+/-,1*")
]


@pytest.mark.parametrize("policy", sorted(POLICIES))
def test_policy_on_paper_grid(benchmark, policy):
    def run():
        return sum(
            _length(get_graph(name), ResourceSet.parse(constraint), policy)
            for name, constraint in GRID
        )

    total = benchmark(run)
    assert total > 0


def test_random_population_ordering(benchmark):
    rows = benchmark(tiebreak_ablation, 8)
    random_row = rows[1].lengths
    assert random_row["append"] <= random_row["first"]
