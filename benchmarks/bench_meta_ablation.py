"""Bench E6: meta-schedule sensitivity (Section 5's claim).

Times threaded scheduling of a random-DAG population under each meta
schedule and asserts the paper's qualitative claim: the structured
metas stay within a few percent of the list baseline on average.
``python -m repro.experiments.meta_ablation`` prints the distribution.
"""

import pytest

from repro.core.meta import META_SCHEDULES, meta_random
from repro.core.scheduler import threaded_schedule
from repro.engine.bench import SUITE_CONSTRAINT
from repro.graphs.random_dags import random_layered_dag
from repro.scheduling.list_scheduler import ListPriority, list_schedule
from repro.scheduling.resources import ResourceSet

RESOURCES = ResourceSet.parse(SUITE_CONSTRAINT)
POPULATION = [
    random_layered_dag(50, seed=3000 + index, mul_fraction=0.35)
    for index in range(6)
]
BASELINES = [
    list_schedule(graph, RESOURCES, ListPriority.READY_ORDER).length
    for graph in POPULATION
]

ALL_METAS = dict(META_SCHEDULES)
ALL_METAS["random-a"] = meta_random(11)
ALL_METAS["random-b"] = meta_random(12)


@pytest.mark.parametrize("meta_name", sorted(ALL_METAS))
def test_meta_population(benchmark, meta_name):
    meta = ALL_METAS[meta_name]

    def run():
        return [
            threaded_schedule(graph, RESOURCES, meta=meta).length
            for graph in POPULATION
        ]

    lengths = benchmark(run)
    ratio = sum(
        length / baseline for length, baseline in zip(lengths, BASELINES)
    ) / len(lengths)
    if "random" not in meta_name:
        assert ratio <= 1.10
    else:
        assert ratio <= 1.30
