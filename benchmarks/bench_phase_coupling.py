"""Bench E5: phase-coupling cost, hard patching vs soft refinement.

Times the full hard flow (schedule, spill-patch, wire-repair) against
the full soft flow (threaded schedule, spill/wire refinement, harden)
per benchmark, asserting the headline: soft growth never exceeds hard
growth.  ``python -m repro.experiments.phase_coupling`` prints the
comparison table.
"""

import pytest

from repro.engine.bench import SUITE_BENCHES
from repro.flows.hard_flow import run_hard_flow
from repro.flows.soft_flow import run_soft_flow
from repro.graphs.registry import get_graph
from repro.physical.wire_model import WireModel
from repro.scheduling.resources import ResourceSet

CONSTRAINT = ResourceSet.parse("2+/-,1*")
WIRES = WireModel(free_length=1.0, cells_per_cycle=3.0)
REGISTERS = 4

BENCHES = SUITE_BENCHES


@pytest.mark.parametrize("bench_name", BENCHES)
def test_hard_flow(benchmark, bench_name):
    graph = get_graph(bench_name)
    result = benchmark(
        run_hard_flow,
        graph,
        CONSTRAINT,
        max_registers=REGISTERS,
        wire_model=WIRES,
    )
    assert result.final.length >= result.initial.length


@pytest.mark.parametrize("bench_name", BENCHES)
def test_soft_flow(benchmark, bench_name):
    graph = get_graph(bench_name)
    result = benchmark(
        run_soft_flow,
        graph,
        CONSTRAINT,
        max_registers=REGISTERS,
        wire_model=WIRES,
    )
    assert result.final.length >= result.initial.length


@pytest.mark.parametrize("bench_name", BENCHES)
def test_soft_growth_bounded(benchmark, bench_name):
    graph = get_graph(bench_name)

    def run():
        hard = run_hard_flow(
            graph, CONSTRAINT, max_registers=REGISTERS, wire_model=WIRES
        )
        soft = run_soft_flow(
            graph, CONSTRAINT, max_registers=REGISTERS, wire_model=WIRES
        )
        return hard, soft

    hard, soft = benchmark(run)
    hard_growth = hard.final.length - hard.initial.length
    soft_growth = soft.final.length - soft.initial.length
    assert soft_growth <= hard_growth
