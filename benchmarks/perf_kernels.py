#!/usr/bin/env python
"""Microbenchmarks for the incremental scheduling kernels.

Times the three kernels this layer introduced against their
full-recompute references, on one seeded random DAG:

* ``graph_view`` — building a fresh CSR :class:`~repro.ir.GraphView`
  (plus diameter) per query vs. the cached ``dfg.view()`` path every
  analysis now rides on.
* ``frames`` — a full ASAP/ALAP window recompute after every fixing
  decision (the pre-PR ``_frames`` sweep) vs. the delta-propagating
  :class:`~repro.scheduling.FrameEngine`.
* ``fds`` — the reference force-directed scheduler vs. the
  prefix-sum/incremental-frames implementation, asserting the two
  produce op-for-op identical schedules while timing them.

Each run appends one entry to a ``repro-perf-v1`` trajectory document
(default ``BENCH_perf.json``) so kernel performance is tracked across
commits.  The ``--min-*-speedup`` flags turn the run into a regression
gate: speedup *ratios* are machine-independent, so CI can fail on a
gross (>3x would-be) slowdown of the incremental kernels without
pinning absolute wall times.

Usage::

    python benchmarks/perf_kernels.py                      # record
    python benchmarks/perf_kernels.py --nodes 200 \
        --min-fds-speedup 3 --min-frames-speedup 3         # CI gate
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

try:
    import repro  # noqa: F401
except ImportError:  # running from a source checkout without install
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.graphs.random_dags import random_hier_dag, random_layered_dag
from repro.ir import GraphView
from repro.ir.analysis import diameter
from repro.scheduling import (
    FrameEngine,
    force_directed_schedule,
    force_directed_schedule_reference,
    list_schedule,
)
from repro.scheduling.force_directed import _frames
from repro.scheduling.list_scheduler import ListPriority
from repro.scheduling.resources import ResourceSet

PERF_FORMAT = "repro-perf-v1"
DEFAULT_RESOURCES = "2+/-,2*"


def _timed(fn):
    started = time.perf_counter()
    value = fn()
    return time.perf_counter() - started, value


def bench_graph_view(dfg, reps: int):
    """Fresh CSR build + diameter per query vs. the cached view."""

    def rebuild():
        for _ in range(reps):
            GraphView(dfg).diameter()

    def cached():
        for _ in range(reps):
            dfg.view().diameter()

    dfg.touch()  # both start cold
    rebuild_s, _ = _timed(rebuild)
    dfg.touch()
    cached_s, _ = _timed(cached)
    return {
        "reps": reps,
        "rebuild_s": rebuild_s,
        "cached_s": cached_s,
        "speedup": rebuild_s / cached_s if cached_s > 0 else float("inf"),
    }


def bench_frames(dfg, latency: int):
    """Full window recompute per fix vs. delta propagation.

    Both sides fix every op at its then-current ASAP in topological
    order — the same narrowing trajectory an FDS sweep follows — and
    must end with identical windows.
    """
    order = dfg.topological_order()

    def full():
        fixed = {}
        frames = _frames(dfg, latency, fixed)
        for node_id in order:
            fixed[node_id] = frames[node_id][0]
            frames = _frames(dfg, latency, fixed)
        return frames

    def incremental():
        engine = FrameEngine(dfg, latency)
        for node_id in order:
            engine.fix(node_id, engine.frame(node_id)[0])
        return engine.frames_dict()

    full_s, full_frames = _timed(full)
    incremental_s, inc_frames = _timed(incremental)
    assert inc_frames == full_frames, "incremental frames diverged"
    return {
        "fixes": len(order),
        "full_s": full_s,
        "incremental_s": incremental_s,
        "speedup": full_s / incremental_s
        if incremental_s > 0
        else float("inf"),
    }


def bench_fds(dfg, resources, latency: int):
    """Reference vs. incremental FDS; schedules must match op-for-op."""
    incremental_s, fast = _timed(
        lambda: force_directed_schedule(dfg, resources, latency=latency)
    )
    reference_s, ref = _timed(
        lambda: force_directed_schedule_reference(
            dfg, resources, latency=latency
        )
    )
    assert fast.start_times == ref.start_times, (
        "incremental FDS diverged from the reference schedule"
    )
    return {
        "latency": latency,
        "length": fast.length,
        "reference_s": reference_s,
        "incremental_s": incremental_s,
        "speedup": reference_s / incremental_s
        if incremental_s > 0
        else float("inf"),
    }


def bench_hier(num_nodes: int, seed: int, resources_text: str):
    """Orchestration overhead of hierarchical scheduling.

    Times one local ``hier_schedule`` run on a seeded blocky DAG and
    splits the wall time into subgraph *scheduling* (the backend) and
    *orchestration* (partitioning, window derivation, stitching,
    validation).  The gate pins the orchestration-to-scheduling
    *ratio*, which is machine-independent like the kernel speedups.
    """
    from repro.hier.orchestrator import LocalBackend, hier_schedule

    class TimedBackend(LocalBackend):
        def __init__(self):
            self.seconds = 0.0

        def run(self, specs):
            started = time.perf_counter()
            results = super().run(specs)
            self.seconds += time.perf_counter() - started
            return results

    dfg = random_hier_dag(num_nodes, seed=seed)
    backend = TimedBackend()
    total_s, result = _timed(
        lambda: hier_schedule(dfg, resources_text, backend=backend)
    )
    schedule_s = backend.seconds
    overhead_s = max(0.0, total_s - schedule_s)
    return {
        "nodes": num_nodes,
        "seed": seed,
        "parts": result.num_partitions,
        "cut": result.partition.cut_size,
        "rounds": result.rounds,
        "length": result.schedule.length,
        "total_s": total_s,
        "schedule_s": schedule_s,
        "overhead_s": overhead_s,
        "overhead_ratio": overhead_s / schedule_s
        if schedule_s > 0
        else float("inf"),
    }


def bench_anytime(graph_name: str, resources_text: str):
    """Incumbent-vs-time trajectory of the anytime exact tier.

    Seeds an engine with the force-directed result (what a serving
    replica's cache would hold), then runs one ``bnb-anytime``
    improver to proof, recording every incumbent with its wall-clock
    offset.  The recorded trajectory documents the tier's anytime
    profile — how quickly the incumbent drops below the heuristic
    seed — and the ``improvement`` ratio (seed length over proved
    length) is machine-independent, so CI can put a generous floor
    under it without pinning wall times.
    """
    from repro.engine.batch import BatchEngine
    from repro.engine.job import JobSpec
    from repro.improve import Improver

    engine = BatchEngine(capture_schedules=True)
    engine.submit(
        [JobSpec.make(graph_name, resources_text, "force-directed")]
    )
    improver = Improver(
        engine, graph_name, resources_text, slice_nodes=1000
    )
    started = time.perf_counter()
    points = []

    def record(event):
        if event["type"] in ("incumbent", "optimal"):
            points.append(
                {
                    "t_s": time.perf_counter() - started,
                    "nodes": event["nodes"],
                    "length": event["length"],
                    "bound": event["bound"],
                }
            )

    summary = improver.run(on_event=record)
    total_s = time.perf_counter() - started
    return {
        "graph": graph_name,
        "resources": resources_text,
        "seed_length": summary["seed_length"],
        "length": summary["length"],
        "proved": summary["proved"],
        "nodes": summary["nodes"],
        "total_s": total_s,
        "improvement": summary["seed_length"] / summary["length"],
        "trajectory": points,
    }


def bench_scenarios():
    """One job per constraint-scenario mode, on its registry workload.

    Times a memory-banked, an I/O-pinned, and a reliability-hardened
    job through a fresh engine and records the machine-independent
    facts next to the wall times: the banked-over-flat length stretch
    (banking can only delay memory traffic), the bnb proof of the
    pinned schedule, and the op count the TMR transform inserted.
    """
    from repro.engine.batch import BatchEngine
    from repro.engine.job import JobSpec
    from repro.graphs.scenario import IOPIN_PINS, TMRMARK_OPS

    engine = BatchEngine(capture_schedules=True)

    flat = engine.run(
        [JobSpec.make("MEMBANK", "2+/-,2*,2mem", "list")]
    )[0]
    memory_s, memory = _timed(
        lambda: engine.run(
            [
                JobSpec.make(
                    "MEMBANK",
                    "2+/-,2*,2mem",
                    "list",
                    scenario={"mode": "memory", "banks": 2, "ports": 1},
                )
            ]
        )[0]
    )
    io_s, io = _timed(
        lambda: engine.run(
            [
                JobSpec.make(
                    "IOPIN",
                    DEFAULT_RESOURCES,
                    "bnb-anytime",
                    scenario={"mode": "io", "pins": dict(IOPIN_PINS)},
                )
            ]
        )[0]
    )
    reliability_s, reliability = _timed(
        lambda: engine.run(
            [
                JobSpec.make(
                    "TMRMARK",
                    DEFAULT_RESOURCES,
                    "list",
                    scenario={
                        "mode": "reliability",
                        "ops": list(TMRMARK_OPS),
                    },
                )
            ]
        )[0]
    )
    for result in (flat, memory, io, reliability):
        assert result.error is None, (
            f"scenario bench job failed: {result.error}"
        )
    io_meta = (io.artifact or {}).get("meta", {})
    return {
        "memory": {
            "length": memory.length,
            "flat_length": flat.length,
            "stretch": memory.length / flat.length,
            "seconds": memory_s,
        },
        "io": {
            "length": io.length,
            "proved": bool(io_meta.get("bnb", {}).get("proved")),
            "seconds": io_s,
        },
        "reliability": {
            "length": reliability.length,
            "inserted": len((reliability.artifact or {})["inserted"]),
            "seconds": reliability_s,
        },
    }


def bench_list(dfg, resources):
    ready_s, ready = _timed(
        lambda: list_schedule(dfg, resources, ListPriority.READY_ORDER)
    )
    mobility_s, mob = _timed(
        lambda: list_schedule(dfg, resources, ListPriority.MOBILITY)
    )
    return {
        "ready_s": ready_s,
        "ready_length": ready.length,
        "mobility_s": mobility_s,
        "mobility_length": mob.length,
    }


def load_trajectory(path: Path):
    if not path.exists():
        return {"format": PERF_FORMAT, "entries": []}
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise SystemExit(f"error: malformed trajectory {path}: {exc}")
    if data.get("format") != PERF_FORMAT:
        raise SystemExit(
            f"error: {path} is not a {PERF_FORMAT} document "
            f"(format={data.get('format')!r})"
        )
    return data


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the incremental scheduling kernels against "
        "their full-recompute references."
    )
    parser.add_argument(
        "--nodes", type=int, default=200, metavar="N",
        help="random-DAG size (default 200)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="random-DAG seed (default 0)",
    )
    parser.add_argument(
        "--slack", type=int, default=3, metavar="K",
        help="FDS latency slack over the critical path (default 3)",
    )
    parser.add_argument(
        "--view-reps", type=int, default=100, metavar="R",
        help="repetitions for the graph-view timing (default 100)",
    )
    parser.add_argument(
        "--json", metavar="PATH", default="BENCH_perf.json",
        help="trajectory document to append to (default BENCH_perf.json)",
    )
    parser.add_argument(
        "--no-json", action="store_true",
        help="measure and gate only; do not touch the trajectory file",
    )
    parser.add_argument(
        "--min-fds-speedup", type=float, default=None, metavar="X",
        help="exit 1 unless incremental FDS is at least X times faster "
        "than the reference",
    )
    parser.add_argument(
        "--min-frames-speedup", type=float, default=None, metavar="X",
        help="exit 1 unless incremental frames are at least X times "
        "faster than full recompute",
    )
    parser.add_argument(
        "--anytime-graph", default="EF", metavar="BENCH",
        help="registry graph for the anytime-tier trajectory cell "
        "(default EF; it improves on its heuristic seed and proves "
        "in well under a second)",
    )
    parser.add_argument(
        "--min-anytime-improvement", type=float, default=1.0, metavar="X",
        help="exit 1 unless the anytime tier proves an optimum and its "
        "seed-over-proved length ratio is at least X (default 1.0 — a "
        "generous floor: the proof must never be worse than the seed)",
    )
    parser.add_argument(
        "--max-memory-stretch", type=float, default=None, metavar="X",
        help="exit 1 when the banked-memory scenario schedule is more "
        "than X times the flat-memory length (lengths are "
        "deterministic, so this gate is machine-independent; 3 is a "
        "generous floor)",
    )
    parser.add_argument(
        "--hier-nodes", type=int, default=None, metavar="N",
        help="also time hierarchical scheduling on an N-op blocky DAG "
        "(off by default; this cell is the slow one)",
    )
    parser.add_argument(
        "--max-hier-overhead", type=float, default=None, metavar="X",
        help="with --hier-nodes: exit 1 when partition+stitch overhead "
        "exceeds X times the subgraph scheduling time",
    )
    opts = parser.parse_args(argv)
    if opts.max_hier_overhead is not None and opts.hier_nodes is None:
        parser.error("--max-hier-overhead needs --hier-nodes")

    dfg = random_layered_dag(opts.nodes, seed=opts.seed)
    resources = ResourceSet.parse(DEFAULT_RESOURCES)
    latency = diameter(dfg) + opts.slack

    print(
        f"perf_kernels: {dfg.name} ({dfg.num_nodes} ops, "
        f"{dfg.num_edges} edges, latency {latency})"
    )
    entry = {
        "recorded_unix": int(time.time()),
        "python": sys.version.split()[0],
        "nodes": opts.nodes,
        "seed": opts.seed,
        "resources": DEFAULT_RESOURCES,
        "graph_view": bench_graph_view(dfg, opts.view_reps),
        "frames": bench_frames(dfg, latency),
        "fds": bench_fds(dfg, resources, latency),
        "list": bench_list(dfg, resources),
        "anytime": bench_anytime(opts.anytime_graph, DEFAULT_RESOURCES),
        "scenarios": bench_scenarios(),
    }
    for kernel in ("graph_view", "frames", "fds"):
        data = entry[kernel]
        detail = {
            key: round(value, 5) if isinstance(value, float) else value
            for key, value in data.items()
            if key != "speedup"
        }
        print(
            f"  {kernel:10s}: {data['speedup']:8.1f}x speedup "
            f"({json.dumps(detail)})"
        )
    print(
        f"  list      : ready {entry['list']['ready_s'] * 1000:.2f} ms, "
        f"mobility {entry['list']['mobility_s'] * 1000:.2f} ms"
    )
    anytime = entry["anytime"]
    print(
        f"  anytime   : {anytime['graph']} seed {anytime['seed_length']} "
        f"-> {'proved ' if anytime['proved'] else ''}{anytime['length']} "
        f"({anytime['improvement']:.2f}x) in {anytime['nodes']} nodes / "
        f"{anytime['total_s'] * 1000:.2f} ms, "
        f"{len(anytime['trajectory'])} trajectory points"
    )
    scenarios = entry["scenarios"]
    print(
        f"  scenarios : memory {scenarios['memory']['length']} "
        f"({scenarios['memory']['stretch']:.2f}x of flat), "
        f"io {scenarios['io']['length']}"
        f"{' proved' if scenarios['io']['proved'] else ''}, "
        f"reliability {scenarios['reliability']['length']} "
        f"(+{scenarios['reliability']['inserted']} inserted ops)"
    )
    if opts.hier_nodes is not None:
        entry["hier"] = hier = bench_hier(
            opts.hier_nodes, opts.seed, DEFAULT_RESOURCES
        )
        print(
            f"  hier      : {hier['nodes']} ops -> {hier['parts']} parts, "
            f"{hier['rounds']} rounds, length {hier['length']}; "
            f"schedule {hier['schedule_s']:.2f}s + orchestration "
            f"{hier['overhead_s']:.2f}s "
            f"({hier['overhead_ratio']:.2f}x ratio)"
        )

    if not opts.no_json:
        path = Path(opts.json)
        trajectory = load_trajectory(path)
        trajectory["entries"].append(entry)
        path.write_text(
            json.dumps(trajectory, indent=2) + "\n", encoding="utf-8"
        )
        print(f"appended entry {len(trajectory['entries'])} to {path}")

    failures = []
    if (
        opts.min_fds_speedup is not None
        and entry["fds"]["speedup"] < opts.min_fds_speedup
    ):
        failures.append(
            f"fds speedup {entry['fds']['speedup']:.1f}x below the "
            f"{opts.min_fds_speedup:g}x gate"
        )
    if (
        opts.min_frames_speedup is not None
        and entry["frames"]["speedup"] < opts.min_frames_speedup
    ):
        failures.append(
            f"frames speedup {entry['frames']['speedup']:.1f}x below "
            f"the {opts.min_frames_speedup:g}x gate"
        )
    if not entry["anytime"]["proved"]:
        failures.append(
            f"anytime tier failed to prove {opts.anytime_graph} optimal"
        )
    elif entry["anytime"]["improvement"] < opts.min_anytime_improvement:
        failures.append(
            f"anytime improvement {entry['anytime']['improvement']:.2f}x "
            f"below the {opts.min_anytime_improvement:g}x floor"
        )
    if not entry["scenarios"]["io"]["proved"]:
        failures.append(
            "bnb failed to prove the I/O-pinned scenario schedule"
        )
    if (
        opts.max_memory_stretch is not None
        and entry["scenarios"]["memory"]["stretch"]
        > opts.max_memory_stretch
    ):
        failures.append(
            f"banked-memory stretch "
            f"{entry['scenarios']['memory']['stretch']:.2f}x above the "
            f"{opts.max_memory_stretch:g}x gate"
        )
    if (
        opts.max_hier_overhead is not None
        and entry["hier"]["overhead_ratio"] > opts.max_hier_overhead
    ):
        failures.append(
            f"hier orchestration overhead "
            f"{entry['hier']['overhead_ratio']:.2f}x above the "
            f"{opts.max_hier_overhead:g}x gate"
        )
    for failure in failures:
        print(f"REGRESSION: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
