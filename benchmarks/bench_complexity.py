"""Bench E4: Theorem 3's linearity claim.

Times full scheduling runs of Algorithm 1 across growing random DAGs
(the per-size groups expose the scaling series) and the naive
speculative scheduler on the sizes it can stomach.  The figure the
series regenerates: per-operation cost vs |V| — linear for Algorithm 1,
superlinear for the naive scheduler.

``python -m repro.experiments.complexity`` prints the measured table
with abstract work counters.
"""

import pytest

from repro.core.naive import NaiveSoftScheduler
from repro.core.threaded_graph import ThreadedGraph
from repro.graphs.random_dags import random_layered_dag

THREADS = 4
SEED = 7


def _graph(size):
    return random_layered_dag(size, seed=SEED, mul_fraction=0.0)


@pytest.mark.parametrize("size", [50, 100, 200, 400, 800])
def test_threaded_scaling(benchmark, size):
    dfg = _graph(size)
    order = dfg.topological_order()

    def run():
        state = ThreadedGraph(dfg, THREADS)
        state.schedule_all(order)
        return state

    state = benchmark(run)
    assert len(state) == size


@pytest.mark.parametrize("size", [25, 50, 100])
def test_naive_scaling(benchmark, size):
    dfg = _graph(size)
    order = dfg.topological_order()

    def run():
        state = NaiveSoftScheduler(dfg, THREADS)
        state.schedule_all(order)
        return state

    state = benchmark(run)
    assert state.diameter() > 0


def test_equal_results_where_both_run(benchmark):
    """The speed difference buys nothing: both reach the same diameter."""
    dfg = _graph(100)
    order = dfg.topological_order()

    def run():
        fast = ThreadedGraph(dfg, THREADS)
        fast.schedule_all(order)
        return fast.diameter()

    fast_diameter = benchmark(run)
    slow = NaiveSoftScheduler(dfg, THREADS)
    slow.schedule_all(order)
    assert fast_diameter == slow.diameter()
