"""Bench E1: regenerate the paper's Figure 3 table.

Each benchmark case schedules one (benchmark, scheduler) pair across
the paper's three resource constraints, timing the runs and asserting
the schedule lengths the reproduction is pinned to (list baseline and
FIR match the paper exactly; threaded cells are never worse — see
EXPERIMENTS.md).

Run ``pytest benchmarks/bench_figure3.py --benchmark-only`` or
``python -m repro.experiments.figure3`` for the plain table.
"""

import pytest

from repro.core.scheduler import threaded_schedule
from repro.experiments.figure3 import (
    BENCHMARKS,
    CONSTRAINTS,
    FIGURE3_PAPER,
    SCHEDULERS,
    _META_OF,
)
from repro.graphs.registry import get_graph
from repro.scheduling.list_scheduler import ListPriority, list_schedule
from repro.scheduling.resources import ResourceSet

RESOURCE_SETS = [ResourceSet.parse(c) for c in CONSTRAINTS]


def _row(bench_name: str, scheduler: str):
    lengths = []
    for resources in RESOURCE_SETS:
        graph = get_graph(bench_name)
        if scheduler == "list sched":
            schedule = list_schedule(
                graph, resources, ListPriority.READY_ORDER
            )
        else:
            schedule = threaded_schedule(
                graph, resources, meta=_META_OF[scheduler]
            )
        lengths.append(schedule.length)
    return tuple(lengths)


@pytest.mark.parametrize("bench_name", BENCHMARKS)
@pytest.mark.parametrize("scheduler", SCHEDULERS)
def test_figure3_row(benchmark, bench_name, scheduler):
    lengths = benchmark(_row, bench_name, scheduler)
    paper = FIGURE3_PAPER[bench_name][scheduler]
    # Reproduction bound: never worse than the paper's number.
    assert all(m <= p for m, p in zip(lengths, paper)), (
        f"{bench_name}/{scheduler}: measured {lengths} vs paper {paper}"
    )
    if scheduler == "list sched" or bench_name == "FIR":
        assert lengths == paper
