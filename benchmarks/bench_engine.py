"""Bench: the batch engine itself (dispatch, cache, parallel overhead).

Times the unified suite through :class:`~repro.engine.batch.BatchEngine`
in its three interesting regimes — cold serial, warm (all cache hits),
and parallel — and asserts the invariants the engine guarantees: hit
runs return identical lengths, and parallel equals serial.
"""

import pytest

from repro.engine.batch import BatchEngine
from repro.engine.bench import suite_jobs


def _lengths(results):
    return [r.length for r in results]


def test_cold_suite_serial(benchmark):
    jobs = suite_jobs()

    def run():
        return BatchEngine(workers=1).run(jobs)

    results = benchmark(run)
    assert len(results) == len(jobs)
    assert not any(r.cached for r in results)


def test_warm_suite_all_hits(benchmark):
    jobs = suite_jobs()
    engine = BatchEngine(workers=1)
    cold = engine.run(jobs)

    results = benchmark(engine.run, jobs)
    assert all(r.cached for r in results)
    assert _lengths(results) == _lengths(cold)


@pytest.mark.parametrize("workers", [2])
def test_parallel_matches_serial(benchmark, workers):
    jobs = suite_jobs()
    serial = BatchEngine(workers=1).run(jobs)

    def run():
        return BatchEngine(workers=workers).run(jobs)

    parallel = benchmark.pedantic(run, rounds=1, iterations=1)
    assert _lengths(parallel) == _lengths(serial)
