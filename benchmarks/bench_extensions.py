"""Bench: the outlook extensions (Section 6) built on the kernel.

Times the remove-and-reinsert local search and rotation scheduling —
the two "embed the online scheduler as a kernel" applications the
paper's conclusion sketches — and asserts their contracts (improvement
is monotone; rotation never ends above its starting length).
"""

import pytest

from repro.core.improve import improve_schedule
from repro.core.meta import meta_random
from repro.core.rotation import rotate_loop
from repro.core.scheduler import ThreadedScheduler
from repro.graphs.registry import get_graph
from repro.ir.parser import parse_program
from repro.ir.ssa import loop_ssa
from repro.scheduling.resources import ResourceSet

RESOURCES = ResourceSet.parse("2+/-,1*")

LOOP_BODY = """
a = x + k1
b = a * c1
c = b * c2
d = c + a
acc = acc + d
"""


@pytest.mark.parametrize("bench_name", ("EF", "AR", "DCT8"))
def test_improve_after_random_order(benchmark, bench_name):
    graph = get_graph(bench_name)

    def run():
        scheduler = ThreadedScheduler(
            graph, resources=RESOURCES, meta=meta_random(9)
        ).run()
        return improve_schedule(scheduler.state, max_rounds=3)

    report = benchmark(run)
    assert report.final_diameter <= report.initial_diameter


def test_rotation_scheduling(benchmark):
    ssa = loop_ssa(parse_program(LOOP_BODY), name="gated")

    def run():
        return rotate_loop(ssa, ResourceSet.of(alu=4, mul=4), rotations=3)

    result = benchmark(run)
    assert result.best_length <= result.initial_length
    assert result.improvement >= 1


def test_phi_pipeline(benchmark):
    """SSA -> schedule -> allocate -> resolve phis, timed end to end."""
    from repro.allocation import left_edge_allocate
    from repro.core.refine import resolve_phi
    from repro.ir.ssa import resolve_all_phis

    source = parse_program(
        """
        acc = acc + x * k
        i = i + 1
        c = i < n
        """
    )

    def run():
        ssa = loop_ssa(source)
        scheduler = ThreadedScheduler(
            ssa.dfg, resources=ResourceSet.parse("2+/-,1*")
        ).run()
        schedule = scheduler.harden()
        allocation = left_edge_allocate(schedule)
        for phi_id, decision in resolve_all_phis(
            ssa, allocation.register_of
        ).items():
            resolve_phi(scheduler.state, phi_id, into=decision)
        return scheduler.harden()

    final = benchmark(run)
    assert final.length > 0
